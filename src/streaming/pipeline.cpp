#include "streaming/pipeline.hpp"

#include <algorithm>
#include <span>

#include "compress/lfz.hpp"

namespace lon::streaming {

namespace {

/// "LFZC"/"LFZ2" magic + u64 original size + u32 chunk count (bytes.hpp
/// encoding) — both chunked containers share the layout.
constexpr std::uint64_t kHeaderBytes = 4 + 8 + 4;

std::uint32_t read_u32(const Bytes& buffer, std::uint64_t pos) {
  return static_cast<std::uint32_t>(buffer[pos]) |
         static_cast<std::uint32_t>(buffer[pos + 1]) << 8 |
         static_cast<std::uint32_t>(buffer[pos + 2]) << 16 |
         static_cast<std::uint32_t>(buffer[pos + 3]) << 24;
}

std::uint64_t read_u64(const Bytes& buffer, std::uint64_t pos) {
  return static_cast<std::uint64_t>(read_u32(buffer, pos)) |
         static_cast<std::uint64_t>(read_u32(buffer, pos + 4)) << 32;
}

}  // namespace

DecompressPipeline::DecompressPipeline(const Options& options)
    : pool_(options.pool != nullptr ? *options.pool : ThreadPool::shared()),
      max_inflight_(options.max_inflight > 0 ? options.max_inflight : 2 * pool_.size()),
      buffers_(options.buffers != nullptr ? *options.buffers : util::BufferPool::shared()) {}

DecompressPipeline::~DecompressPipeline() { abort(); }

std::size_t DecompressPipeline::abort() {
  std::size_t drained = 0;
  for (; drained_ < inflight_.size(); ++drained_, ++drained) {
    inflight_[drained_].get();
  }
  out_.reset();     // back to the pool
  source_.reset();  // release the dead attempt's download slab
  // Stray stripe events from the failed download's callbacks must not start
  // new decodes on a dead attempt.
  header_ = Header::kNotChunked;
  return drained;
}

void DecompressPipeline::merge_stripe(std::uint64_t offset, std::uint64_t length) {
  const std::uint64_t end = offset + length;
  auto it = std::lower_bound(ranges_.begin(), ranges_.end(),
                             std::pair<std::uint64_t, std::uint64_t>{offset, 0});
  it = ranges_.insert(it, {offset, end});
  // Merge with neighbours that touch or overlap.
  if (it != ranges_.begin() && std::prev(it)->second >= it->first) {
    auto prev = std::prev(it);
    prev->second = std::max(prev->second, it->second);
    it = ranges_.erase(it);
    it = std::prev(it);
  }
  while (std::next(it) != ranges_.end() && it->second >= std::next(it)->first) {
    it->second = std::max(it->second, std::next(it)->second);
    ranges_.erase(std::next(it));
  }
}

std::uint64_t DecompressPipeline::contiguous_prefix() const {
  if (ranges_.empty() || ranges_.front().first != 0) return 0;
  return ranges_.front().second;
}

void DecompressPipeline::on_stripe(const lors::StripeEvent& event, SimTime now) {
  if (header_ == Header::kNotChunked || event.buffer == nullptr) return;
  // Hold the download slab: chunk decodes read compressed bodies straight
  // out of it on pool workers, possibly after the download object is gone.
  if (source_ == nullptr) source_ = event.owner;
  merge_stripe(event.offset, event.length);
  report_.last_stripe_at = now;
  pump(*event.buffer, contiguous_prefix(), now, /*final_pass=*/false);
}

bool DecompressPipeline::pump(const Bytes& buffer, std::uint64_t prefix, SimTime now,
                              bool final_pass) {
  if (header_ == Header::kNotChunked) return false;
  if (header_ == Header::kUnknown) {
    if (prefix < kHeaderBytes) return true;  // directory not yet decidable
    if (!lfz::is_chunked(std::span(buffer).first(4))) {
      header_ = Header::kNotChunked;
      return false;
    }
    original_size_ = read_u64(buffer, 4);
    chunk_count_ = read_u32(buffer, 12);
    // A forged header must not drive the slab allocation below: bound the
    // claimed plaintext by the container's worst-case expansion ratio.
    if (chunk_count_ == 0 || chunk_count_ > buffer.size() ||
        original_size_ > (buffer.size() + 16) * 1032) {
      header_ = Header::kNotChunked;  // malformed; the fallback path reports it
      return false;
    }
    header_ = Header::kChunked;
    parse_pos_ = kHeaderBytes;
    // One pooled slab the whole object decodes into, chunk by chunk, each at
    // its prefix-summed offset — the in-place half of the zero-copy path.
    out_ = buffers_.acquire(original_size_);
    out_pos_ = 0;
    report_.chunked = true;
    report_.chunks_total = chunk_count_;
    report_.chunks.resize(chunk_count_);
  }
  while (next_chunk_ < chunk_count_ && parse_pos_ + 4 <= prefix) {
    const std::uint32_t body_length = read_u32(buffer, parse_pos_);
    if (parse_pos_ + 4 + body_length > buffer.size()) {
      header_ = Header::kNotChunked;  // length prefix runs past the container
      return false;
    }
    if (parse_pos_ + 4 + body_length > prefix) break;  // body still in flight
    submit_chunk(buffer, next_chunk_, parse_pos_ + 4, body_length, now);
    if (!final_pass) ++report_.chunks_overlapped;
    parse_pos_ += 4 + body_length;
    ++next_chunk_;
  }
  return true;
}

void DecompressPipeline::submit_chunk(const Bytes& buffer, std::size_t index,
                                      std::uint64_t body_offset, std::uint32_t body_length,
                                      SimTime now) {
  // The compressed body is read in place out of the download slab — no
  // per-chunk staging vector. `source_` (held by the task) keeps the slab
  // alive; regions still being landed by the download are disjoint from any
  // completed chunk, so pool-side reads never race the simulator thread.
  const std::span<const std::uint8_t> body =
      std::span(buffer).subspan(body_offset, body_length);
  ChunkRecord& record = report_.chunks[index];
  record.available_at = now;
  record.compressed_bytes = body_length;
  try {
    record.original_bytes = lfz::decompressed_size(body);
  } catch (const DecodeError&) {
    record.original_bytes = 0;
    any_failed_ = true;  // undecodable header; the fallback path reports it
    return;
  }
  if (record.original_bytes > original_size_ - out_pos_) {
    any_failed_ = true;  // chunks claim more than the container header did
    return;
  }
  const std::span<std::uint8_t> dest =
      std::span(*out_).subspan(out_pos_, record.original_bytes);
  out_pos_ += record.original_bytes;
  // Bounded producer/consumer: block the producer on the oldest decode when
  // too many are outstanding, keeping undrained decode work bounded.
  while (inflight_.size() - drained_ >= max_inflight_) {
    if (!inflight_[drained_].get()) any_failed_ = true;
    ++drained_;
  }
  inflight_.push_back(
      pool_.submit([body, dest, keepalive = source_, out = out_]() -> bool {
        try {
          lfz::decompress_into(body, dest);
          return true;
        } catch (...) {
          return false;
        }
      }));
}

std::shared_ptr<Bytes> DecompressPipeline::finish(const Bytes& full, SimTime now,
                                                  Report& report) {
  if (header_ != Header::kNotChunked) {
    // Pick up chunks whose stripes bypassed on_stripe (retried blocks, or a
    // caller that never wired the stripe callback).
    pump(full, full.size(), now, /*final_pass=*/true);
  }
  for (; drained_ < inflight_.size(); ++drained_) {
    if (!inflight_[drained_].get()) any_failed_ = true;
  }
  report = report_;
  if (header_ != Header::kChunked) return nullptr;
  if (any_failed_ || next_chunk_ < chunk_count_ || out_pos_ != original_size_) {
    report.ok = false;
    return nullptr;
  }
  report_.ok = true;
  report = report_;
  return std::move(out_);
}

SimDuration residual_decompress_time(const DecompressPipeline::Report& report,
                                     double bytes_per_sec, int workers) {
  if (!report.chunked || report.chunks.empty() || bytes_per_sec <= 0.0) return 0;
  std::vector<SimTime> free_at(static_cast<std::size_t>(std::max(1, workers)), 0);
  SimTime done = 0;
  // Chunks are recorded in container order, which is also the order the
  // contiguous prefix released them — available_at is nondecreasing, so a
  // single forward pass is an exact replay of the modeled decoder farm.
  for (const auto& chunk : report.chunks) {
    auto slot = std::min_element(free_at.begin(), free_at.end());
    const SimTime start = std::max(*slot, chunk.available_at);
    *slot = start + from_seconds(static_cast<double>(chunk.original_bytes) / bytes_per_sec);
    done = std::max(done, *slot);
  }
  return done > report.last_stripe_at ? done - report.last_stripe_at : 0;
}

}  // namespace lon::streaming
