#include "streaming/site_cache.hpp"

#include <utility>

namespace lon::streaming {

SiteCache::SiteCache(sim::Simulator& sim, SiteCacheConfig config, obs::Context* obs)
    : sim_(sim),
      config_(config),
      obs_(obs != nullptr ? *obs : obs::global()),
      scope_(obs_.metrics.scope("site")),
      metrics_{scope_.counter("site.lookups"),
               scope_.counter("site.hits"),
               scope_.counter("site.misses"),
               scope_.counter("site.publishes"),
               scope_.counter("site.invalidations"),
               scope_.counter("site.expirations"),
               scope_.counter("site.evictions"),
               scope_.counter("site.restage_leaders"),
               scope_.counter("site.restage_joins"),
               scope_.counter("site.restage_keys"),
               scope_.gauge("site.entries"),
               scope_.gauge("site.bytes")} {}

std::size_t SiteCache::add_listener(InvalidateListener listener) {
  std::lock_guard lock(mutex_);
  const std::size_t token = next_listener_++;
  listeners_.emplace(token, std::move(listener));
  return token;
}

void SiteCache::remove_listener(std::size_t token) {
  std::lock_guard lock(mutex_);
  listeners_.erase(token);
}

std::vector<SiteCache::InvalidateListener> SiteCache::listeners_locked() const {
  std::vector<InvalidateListener> out;
  out.reserve(listeners_.size());
  // Fan out in registration order: agents are constructed in a fixed order,
  // so the wave is deterministic.
  for (std::size_t token = 0; token < next_listener_; ++token) {
    if (auto it = listeners_.find(token); it != listeners_.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

void SiteCache::fanout(const std::vector<InvalidateListener>& listeners,
                       const Key& key) {
  for (const InvalidateListener& listener : listeners) {
    if (listener) listener(key.id, key.lod);
  }
}

void SiteCache::erase_locked(std::unordered_map<Key, Entry, KeyHash>::iterator it) {
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru);
  entries_.erase(it);
  metrics_.entries.set(static_cast<double>(entries_.size()));
  metrics_.bytes.set(static_cast<double>(bytes_));
}

std::optional<exnode::ExNode> SiteCache::lookup(const lightfield::ViewSetId& id,
                                                int lod) {
  metrics_.lookups.inc();
  const Key key{id, lod};
  std::vector<InvalidateListener> expired_listeners;
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      metrics_.misses.inc();
      return std::nullopt;
    }
    // Lazy lease check: a dead copy must never be served, timers or not.
    if (sim_.now() >= it->second.expires_at) {
      metrics_.expirations.inc();
      erase_locked(it);
      expired_listeners = listeners_locked();
    } else {
      metrics_.hits.inc();
      lru_.splice(lru_.begin(), lru_, it->second.lru);
      return it->second.exnode;
    }
  }
  fanout(expired_listeners, key);
  metrics_.misses.inc();
  return std::nullopt;
}

bool SiteCache::contains(const lightfield::ViewSetId& id, int lod) const {
  const Key key{id, lod};
  std::lock_guard lock(mutex_);
  auto it = entries_.find(key);
  return it != entries_.end() && sim_.now() < it->second.expires_at;
}

void SiteCache::publish(const lightfield::ViewSetId& id, int lod,
                        const exnode::ExNode& exnode, std::uint64_t bytes,
                        SimTime expires_at) {
  metrics_.publishes.inc();
  const Key key{id, lod};
  std::uint64_t generation = 0;
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      bytes_ -= it->second.bytes;
      lru_.splice(lru_.begin(), lru_, it->second.lru);
    } else {
      lru_.push_front(key);
      it = entries_.emplace(key, Entry{}).first;
      it->second.lru = lru_.begin();
    }
    it->second.exnode = exnode;
    it->second.bytes = bytes;
    it->second.expires_at = expires_at;
    it->second.generation = generation = ++generation_;
    bytes_ += bytes;
    // Capacity: evict the coldest entries until the fresh copy fits. The
    // stager's replica and lease are untouched — only the index forgets —
    // so no fanout. The entry just published is the LRU front and survives.
    while (config_.capacity_bytes > 0 && bytes_ > config_.capacity_bytes &&
           lru_.size() > 1) {
      metrics_.evictions.inc();
      erase_locked(entries_.find(lru_.back()));
    }
    metrics_.entries.set(static_cast<double>(entries_.size()));
    metrics_.bytes.set(static_cast<double>(bytes_));
  }
  if (config_.expiry_timers && expires_at > sim_.now()) {
    sim_.after(expires_at - sim_.now(),
               [this, key, generation] { expire_if_current(key, generation); });
  }
}

void SiteCache::expire_if_current(const Key& key, std::uint64_t generation) {
  std::vector<InvalidateListener> listeners;
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(key);
    // A republish (new lease) supersedes this timer.
    if (it == entries_.end() || it->second.generation != generation) return;
    metrics_.expirations.inc();
    erase_locked(it);
    listeners = listeners_locked();
  }
  fanout(listeners, key);
}

void SiteCache::invalidate(const lightfield::ViewSetId& id, int lod) {
  metrics_.invalidations.inc();
  const Key key{id, lod};
  std::vector<InvalidateListener> listeners;
  {
    std::lock_guard lock(mutex_);
    if (auto it = entries_.find(key); it != entries_.end()) erase_locked(it);
    listeners = listeners_locked();
  }
  // The fanout runs even when the entry was already gone: the caller just
  // proved the copy dead, and every co-sited agent must drop its derived
  // state in the same instant.
  fanout(listeners, key);
}

bool SiteCache::begin_restage(const lightfield::ViewSetId& id, int lod,
                              RestageCallback on_done) {
  const Key key{id, lod};
  std::lock_guard lock(mutex_);
  auto [it, leader] = flights_.try_emplace(key);
  if (!leader) {
    metrics_.restage_joins.inc();
    if (on_done) it->second.waiters.push_back(std::move(on_done));
    return false;
  }
  metrics_.restage_leaders.inc();
  if (restaged_keys_.insert(key).second) metrics_.restage_keys.inc();
  return true;
}

void SiteCache::finish_restage(const lightfield::ViewSetId& id, int lod, bool ok,
                               const exnode::ExNode& exnode) {
  const Key key{id, lod};
  std::vector<RestageCallback> waiters;
  {
    std::lock_guard lock(mutex_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return;
    waiters = std::move(it->second.waiters);
    flights_.erase(it);
  }
  for (RestageCallback& cb : waiters) {
    if (cb) cb(ok, exnode);
  }
}

const SiteCache::Stats& SiteCache::stats() const {
  stats_view_.lookups = metrics_.lookups.value();
  stats_view_.hits = metrics_.hits.value();
  stats_view_.misses = metrics_.misses.value();
  stats_view_.publishes = metrics_.publishes.value();
  stats_view_.invalidations = metrics_.invalidations.value();
  stats_view_.expirations = metrics_.expirations.value();
  stats_view_.evictions = metrics_.evictions.value();
  stats_view_.restage_leaders = metrics_.restage_leaders.value();
  stats_view_.restage_joins = metrics_.restage_joins.value();
  stats_view_.restage_keys = metrics_.restage_keys.value();
  std::lock_guard lock(mutex_);
  stats_view_.entries = entries_.size();
  stats_view_.bytes = bytes_;
  return stats_view_;
}

std::size_t SiteCache::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

}  // namespace lon::streaming
