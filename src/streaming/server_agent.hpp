// The server and server agent — paper section 3.4.
//
// "The generator in the server renders the volume datasets into view sets
// ... also compresses each view set ... Working from the entire collection
// of requests that have been received but not yet rendered, the scheduler
// chooses the latest request to assign to the generator. After the generator
// renders a view set, per request of the scheduler, a copy is sent to the
// client agent and the pool of server depots, and the DVS is updated."
//
// The generator's *content* is produced by the attached ViewSetSource (real
// ray casting or procedural); the *time* it takes is charged on the virtual
// clock from a calibrated cost model (rendering scales with pixels per
// processor; I/O dominates, as the paper notes). Requests are scheduled LIFO
// — the most recent request is the one the interactive user is waiting on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>

#include "lightfield/builder.hpp"
#include "lors/lors.hpp"
#include "streaming/dvs.hpp"

namespace lon::streaming {

struct ServerAgentConfig {
  std::vector<std::string> depots;        ///< server depots for uploads
  int replicas = 1;
  std::uint64_t block_bytes = 512 * 1024;
  SimDuration lease = 24 * 3600 * kSecond;
  sim::TransferOptions net;

  // Generation cost model (virtual time).
  int processors = 32;                    ///< the paper's cluster size
  double pixels_per_sec_per_proc = 1.5e6; ///< ray-cast throughput per CPU
  double io_bytes_per_sec = 25e6;         ///< "most of the time ... disk I/O"

  // Concurrency.
  /// Requests serviced at once. The cluster's processors are split evenly
  /// across lanes, so one request on a busy server is slower but N waiting
  /// clients stop serializing behind each other's uploads.
  int generator_lanes = 1;
  /// Compressed-container chunk size handed to the source (> 0 emits the
  /// chunked LFZC format the agent pipeline can overlap; 0 = plain lfz).
  std::uint64_t chunk_bytes = 0;
  /// Pool for the source's real CPU work (ray-cast views, codec chunks).
  ThreadPool* pool = nullptr;
  /// Emit inter-view-predicted LFZ2 containers instead of LFZC — fewer
  /// bytes on the wire, decoded transparently by the client agent.
  bool lfz2 = false;
};

class ServerAgent final : public GeneratorService {
 public:
  ServerAgent(sim::Simulator& sim, sim::Network& net, lors::Lors& lors, DvsServer& dvs,
              sim::NodeId node, std::shared_ptr<lightfield::ViewSetSource> source,
              ServerAgentConfig config, obs::Context* obs = nullptr);

  [[nodiscard]] sim::NodeId node() const { return node_; }

  /// Virtual-time cost of rendering + compressing + writing one view set.
  [[nodiscard]] SimDuration generation_cost() const;

  /// DVS miss path: render at runtime, upload, update the DVS, reply.
  void generate_async(const lightfield::ViewSetId& id, GenerateCallback on_done) override;

  [[nodiscard]] std::size_t queue_depth() const { return pending_.size(); }
  [[nodiscard]] int active_lanes() const { return active_; }
  [[nodiscard]] std::uint64_t generated_count() const {
    return metrics_.generated.value();
  }

 private:
  struct Request {
    lightfield::ViewSetId id;
    GenerateCallback on_done;
    obs::SpanId span = 0;  ///< server.generate span, queue wait included
  };

  struct Metrics {
    obs::Counter& requests;
    obs::Counter& generated;
    obs::Counter& upload_failures;
  };

  void maybe_start();
  void run_one(Request request);

  sim::Simulator& sim_;
  sim::Network& net_;
  lors::Lors& lors_;
  DvsServer& dvs_;
  sim::NodeId node_;
  std::shared_ptr<lightfield::ViewSetSource> source_;
  ServerAgentConfig config_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;

  std::deque<Request> pending_;  // back = latest; scheduler pops the back (LIFO)
  int active_ = 0;               // requests currently occupying a lane
};

}  // namespace lon::streaming
