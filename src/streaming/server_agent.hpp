// The server and server agent — paper section 3.4.
//
// "The generator in the server renders the volume datasets into view sets
// ... also compresses each view set ... Working from the entire collection
// of requests that have been received but not yet rendered, the scheduler
// chooses the latest request to assign to the generator. After the generator
// renders a view set, per request of the scheduler, a copy is sent to the
// client agent and the pool of server depots, and the DVS is updated."
//
// The generator's *content* is produced by the attached ViewSetSource (real
// ray casting or procedural); the *time* it takes is charged on the virtual
// clock from a calibrated cost model (rendering scales with pixels per
// processor; I/O dominates, as the paper notes). Requests are scheduled LIFO
// — the most recent request is the one the interactive user is waiting on.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>

#include "lightfield/builder.hpp"
#include "lors/lors.hpp"
#include "streaming/admission.hpp"
#include "streaming/dvs.hpp"

namespace lon::streaming {

struct ServerAgentConfig {
  std::vector<std::string> depots;        ///< server depots for uploads
  int replicas = 1;
  std::uint64_t block_bytes = 512 * 1024;
  SimDuration lease = 24 * 3600 * kSecond;
  sim::TransferOptions net;

  // Generation cost model (virtual time).
  int processors = 32;                    ///< the paper's cluster size
  double pixels_per_sec_per_proc = 1.5e6; ///< ray-cast throughput per CPU
  double io_bytes_per_sec = 25e6;         ///< "most of the time ... disk I/O"

  // Concurrency.
  /// Requests serviced at once. The cluster's processors are split evenly
  /// across lanes, so one request on a busy server is slower but N waiting
  /// clients stop serializing behind each other's uploads.
  int generator_lanes = 1;
  /// Compressed-container chunk size handed to the source (> 0 emits the
  /// chunked LFZC format the agent pipeline can overlap; 0 = plain lfz).
  std::uint64_t chunk_bytes = 0;
  /// Pool for the source's real CPU work (ray-cast views, codec chunks).
  ThreadPool* pool = nullptr;
  /// Emit inter-view-predicted LFZ2 containers instead of LFZC — fewer
  /// bytes on the wire, decoded transparently by the client agent.
  bool lfz2 = false;

  // --- Overload protection ----------------------------------------------------
  /// Admission control over the generation queue: bounded queue + deadline
  /// triage. Per-requester token buckets are not used here (the DVS does not
  /// forward requester identity); requester fairness is enforced at the
  /// client agent, which knows which client is asking. Disabled by default —
  /// the legacy unbounded LIFO queue.
  AdmissionConfig admission;
  /// Time-to-need for a freshly queued generation request: a request whose
  /// estimated completion (generation cost times lane availability) lands
  /// past this is shed instead of served uselessly late. 0 = no triage.
  SimDuration deadline = 0;

  // --- Demand-driven replica augmentation --------------------------------------
  /// Hot reports on one view set before its replicas are fanned out to an
  /// additional depot (0 = augmentation off).
  int augment_threshold = 0;
  /// Consecutive augments of one view set are at least this far apart — the
  /// hysteresis that keeps an oscillating shed rate from flapping replicas
  /// on and off a depot.
  SimDuration augment_cooldown = 60 * kSecond;
  /// Depots eligible to receive fanned-out replicas (round-robin). Empty =
  /// the upload depot pool.
  std::vector<std::string> augment_depots;
};

class ServerAgent final : public GeneratorService {
 public:
  ServerAgent(sim::Simulator& sim, sim::Network& net, lors::Lors& lors, DvsServer& dvs,
              sim::NodeId node, std::shared_ptr<lightfield::ViewSetSource> source,
              ServerAgentConfig config, obs::Context* obs = nullptr);

  [[nodiscard]] sim::NodeId node() const { return node_; }

  /// Virtual-time cost of rendering + compressing + writing one view set.
  [[nodiscard]] SimDuration generation_cost() const;

  /// DVS miss path: render at runtime, upload, update the DVS, reply.
  void generate_async(const lightfield::ViewSetId& id, GenerateCallback on_done) override;

  /// Status-carrying path used by the DVS: admission control runs here, and
  /// a refused request is answered with an explicit kShed the requester can
  /// retry — never silently queued past the deadline.
  void generate_with_status_async(const lightfield::ViewSetId& id,
                                  GenerateStatusCallback on_done) override;

  /// Demand-pressure relay from the DVS: past the configured threshold the
  /// hot view set is fanned out to one more depot via `lors` augment (with
  /// per-id cooldown hysteresis), and the DVS learns the wider exNode.
  void note_hot(const lightfield::ViewSetId& id, const exnode::ExNode& exnode) override;

  [[nodiscard]] std::size_t queue_depth() const { return pending_.size(); }
  [[nodiscard]] int active_lanes() const { return active_; }
  [[nodiscard]] std::uint64_t generated_count() const {
    return metrics_.generated.value();
  }
  [[nodiscard]] std::uint64_t shed_count() const { return metrics_.sheds.value(); }
  [[nodiscard]] std::uint64_t augment_count() const { return metrics_.augments.value(); }

 private:
  struct Request {
    lightfield::ViewSetId id;
    GenerateStatusCallback on_done;
    obs::SpanId span = 0;  ///< server.generate span, queue wait included
  };

  struct Metrics {
    obs::Counter& requests;
    obs::Counter& generated;
    obs::Counter& upload_failures;
    obs::Counter& sheds;            ///< server.generation_shed
    obs::Counter& shed_queue_full;
    obs::Counter& shed_deadline;
    obs::Counter& hot_reports;
    obs::Counter& augments;
    obs::Counter& augment_failures;
  };

  void maybe_start();
  void run_one(Request request);
  void augment(const lightfield::ViewSetId& id, const exnode::ExNode& exnode);

  sim::Simulator& sim_;
  sim::Network& net_;
  lors::Lors& lors_;
  DvsServer& dvs_;
  sim::NodeId node_;
  std::shared_ptr<lightfield::ViewSetSource> source_;
  ServerAgentConfig config_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;

  std::deque<Request> pending_;  // back = latest; scheduler pops the back (LIFO)
  int active_ = 0;               // requests currently occupying a lane

  // Overload protection / augmentation state.
  AdmissionController admission_;
  std::unordered_map<lightfield::ViewSetId, int, lightfield::ViewSetIdHash> hot_counts_;
  std::unordered_map<lightfield::ViewSetId, SimTime, lightfield::ViewSetIdHash>
      augment_not_before_;  ///< per-id cooldown gate (hysteresis)
  std::size_t augment_rr_ = 0;
};

}  // namespace lon::streaming
