// Bounded producer/consumer pipeline overlapping view-set decompression with
// in-flight LoRS stripe transfers.
//
// Figure 8 shows decompression becoming the interactive bottleneck at large
// view resolutions; the chunked lfz container (compress/lfz.hpp) removed the
// single-stream limit, but the demand path still decompressed only after the
// last stripe landed. This pipeline starts decoding as soon as the arrived
// stripes cover a complete chunk: the LoRS download (producer, simulator
// thread) feeds stripe-arrival events, complete chunks are submitted to the
// shared ThreadPool (consumers) with a bounded number in flight, and
// finish() drains the tail once the final stripe lands.
//
// Two clocks are in play and deliberately kept separate (DESIGN.md
// section 10): the *real* decode work runs on pool workers concurrently with
// the simulator thread's event processing, while the *virtual* cost the
// client charges is replayed deterministically from the per-chunk virtual
// arrival times recorded here (residual_decompress_time) — so modeled runs
// stay bit-for-bit reproducible regardless of host core count.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <vector>

#include "lors/lors.hpp"
#include "util/buffer_pool.hpp"
#include "util/bytes.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace lon::streaming {

class DecompressPipeline {
 public:
  struct Options {
    ThreadPool* pool = nullptr;   ///< defaults to ThreadPool::shared()
    /// Chunk decodes allowed in flight before the producer blocks; 0 = twice
    /// the pool size. Bounds the memory held by undrained decodes.
    std::size_t max_inflight = 0;
    /// Pool the decoded-output slab is acquired from (null =
    /// util::BufferPool::shared()).
    util::BufferPool* buffers = nullptr;
  };

  /// One chunk's virtual-time footprint, for the deterministic replay.
  struct ChunkRecord {
    SimTime available_at = 0;            ///< virtual time its last byte arrived
    std::uint64_t compressed_bytes = 0;
    std::uint64_t original_bytes = 0;
  };

  struct Report {
    bool chunked = false;    ///< payload was chunked (LFZC/LFZ2, pipeline on)
    bool ok = false;         ///< every chunk decoded cleanly
    std::size_t chunks_total = 0;
    std::size_t chunks_overlapped = 0;  ///< submitted before the final stripe
    std::vector<ChunkRecord> chunks;
    SimTime last_stripe_at = 0;
  };

  explicit DecompressPipeline(const Options& options);

  /// Decode tasks capture `this`; destruction with decodes still in flight
  /// would be a use-after-free on a pool worker. The destructor drains
  /// whatever abort()/finish() has not already waited on.
  ~DecompressPipeline();

  DecompressPipeline(const DecompressPipeline&) = delete;
  DecompressPipeline& operator=(const DecompressPipeline&) = delete;

  /// Abandons the attempt (failed download about to be refetched): waits out
  /// every in-flight chunk decode, releases the decoded buffers, and turns
  /// any further on_stripe() calls into no-ops. Returns how many decodes had
  /// to be drained — the work the old code leaked.
  std::size_t abort();

  /// Producer side: a verified stripe landed in the download buffer at
  /// virtual time `now`. Parses the chunk directory (LFZC or LFZ2 — same
  /// layout, different payload) out of the contiguous prefix and submits
  /// every newly-complete chunk to the pool.
  /// Called on the simulator thread only.
  void on_stripe(const lors::StripeEvent& event, SimTime now);

  /// Drains all in-flight decodes and hands back the decoded object. Chunks
  /// were decoded in place into one pooled slab at prefix-summed offsets, so
  /// there is no assembly pass — the returned slab *is* the original
  /// serialized bytes, already laid out. `full` is the completed download
  /// buffer (also used to pick up chunks whose stripes never went through
  /// on_stripe, e.g. failover re-fetches). Returns null when the payload is
  /// not a chunked container or any chunk failed to decode — the caller
  /// falls back to the ordinary whole-buffer decompress.
  std::shared_ptr<Bytes> finish(const Bytes& full, SimTime now, Report& report);

 private:
  /// Parses and submits chunks out of buffer[0, prefix); returns false when
  /// the container is known not to be chunked.
  bool pump(const Bytes& buffer, std::uint64_t prefix, SimTime now, bool final_pass);
  void submit_chunk(const Bytes& buffer, std::size_t index, std::uint64_t body_offset,
                    std::uint32_t body_length, SimTime now);
  void merge_stripe(std::uint64_t offset, std::uint64_t length);
  [[nodiscard]] std::uint64_t contiguous_prefix() const;

  ThreadPool& pool_;
  std::size_t max_inflight_;
  util::BufferPool& buffers_;

  // Arrived byte ranges, merged and sorted by offset.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges_;  // [offset, end)

  // LFZC parse state over the contiguous prefix.
  enum class Header { kUnknown, kChunked, kNotChunked } header_ = Header::kUnknown;
  std::uint64_t original_size_ = 0;
  std::uint32_t chunk_count_ = 0;
  std::uint64_t parse_pos_ = 0;   ///< next unparsed byte of the container
  std::size_t next_chunk_ = 0;    ///< next chunk index to submit

  /// Shares ownership of the download slab the overlapped decode tasks read
  /// compressed bodies from — the pool must not recycle it under a worker.
  std::shared_ptr<const Bytes> source_;
  /// Pooled destination slab every chunk decodes into, in place, at its
  /// prefix-summed output offset.
  std::shared_ptr<Bytes> out_;
  std::uint64_t out_pos_ = 0;     ///< output offset of the next chunk
  std::vector<std::future<bool>> inflight_;
  std::size_t drained_ = 0;       ///< inflight_ futures already waited on
  bool any_failed_ = false;
  Report report_;
};

/// Deterministic replay of the pipeline on the virtual clock: chunks become
/// available at their recorded virtual arrival times and are decoded by
/// `workers` modeled decoders at `bytes_per_sec` (uncompressed output
/// bytes). Returns the decompression time that extends *past* the final
/// stripe — the only decode latency the overlap failed to hide, which is
/// what the client charges instead of the full serial cost.
[[nodiscard]] SimDuration residual_decompress_time(const DecompressPipeline::Report& report,
                                                   double bytes_per_sec, int workers);

}  // namespace lon::streaming
