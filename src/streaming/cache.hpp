// Byte-budgeted LRU cache keyed by view-set id.
//
// The client agent "maintains a cache of both view sets and the exNodes of
// view sets recently downloaded or pre-fetched" (paper section 3.5). The
// budget applies to payload bytes; exNodes are tiny and tracked separately
// without a budget.
//
// Thread-safe: the multi-client session driver hammers one shared agent's
// cache from concurrent fetch completions, and the decompress pipeline holds
// payloads while the simulator thread keeps evicting. All operations take an
// internal mutex, and get() hands out shared ownership of the payload so a
// reader is never left holding bytes that a concurrent put() just evicted.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "lightfield/lattice.hpp"
#include "util/bytes.hpp"

namespace lon::streaming {

class ViewSetCache {
 public:
  explicit ViewSetCache(std::uint64_t budget_bytes) : budget_(budget_bytes) {}

  /// Inserts (or refreshes) an entry, evicting LRU entries to stay within
  /// budget. Items larger than the whole budget are not cached.
  void put(const lightfield::ViewSetId& id, Bytes data);

  /// Returns shared ownership of the bytes (empty on miss) and marks the
  /// entry most recently used. The payload stays valid after eviction for as
  /// long as the caller holds the pointer.
  [[nodiscard]] std::shared_ptr<const Bytes> get(const lightfield::ViewSetId& id);

  /// Lookup without touching recency (for inspection).
  [[nodiscard]] bool contains(const lightfield::ViewSetId& id) const {
    std::lock_guard lock(mutex_);
    return map_.contains(id);
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return map_.size();
  }
  [[nodiscard]] std::uint64_t bytes_used() const {
    std::lock_guard lock(mutex_);
    return used_;
  }
  [[nodiscard]] std::uint64_t budget() const { return budget_; }
  [[nodiscard]] std::uint64_t evictions() const {
    std::lock_guard lock(mutex_);
    return evictions_;
  }

 private:
  struct Entry {
    lightfield::ViewSetId id;
    std::shared_ptr<const Bytes> data;
  };
  using List = std::list<Entry>;

  void evict_to_fit(std::uint64_t incoming);  // caller holds mutex_

  const std::uint64_t budget_;
  mutable std::mutex mutex_;
  std::uint64_t used_ = 0;
  std::uint64_t evictions_ = 0;
  List lru_;  // front = most recent
  std::unordered_map<lightfield::ViewSetId, List::iterator, lightfield::ViewSetIdHash>
      map_;
};

inline void ViewSetCache::evict_to_fit(std::uint64_t incoming) {
  while (used_ + incoming > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    used_ -= victim.data->size();
    map_.erase(victim.id);
    lru_.pop_back();
    ++evictions_;
  }
}

inline void ViewSetCache::put(const lightfield::ViewSetId& id, Bytes data) {
  std::lock_guard lock(mutex_);
  // Drop any existing entry for this id first: even when the new payload is
  // too big to cache, serving the old (possibly invalidated) version from
  // get() would be worse than a miss.
  auto it = map_.find(id);
  if (it != map_.end()) {
    used_ -= it->second->data->size();
    lru_.erase(it->second);
    map_.erase(it);
  }
  if (data.size() > budget_) return;  // would evict everything for nothing
  evict_to_fit(data.size());
  used_ += data.size();
  lru_.push_front(Entry{id, std::make_shared<const Bytes>(std::move(data))});
  map_[id] = lru_.begin();
}

inline std::shared_ptr<const Bytes> ViewSetCache::get(const lightfield::ViewSetId& id) {
  std::lock_guard lock(mutex_);
  auto it = map_.find(id);
  if (it == map_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return it->second->data;
}

}  // namespace lon::streaming
