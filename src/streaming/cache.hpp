// Byte-budgeted view-set cache with pluggable replacement policy.
//
// The client agent "maintains a cache of both view sets and the exNodes of
// view sets recently downloaded or pre-fetched" (paper section 3.5). The
// budget applies to payload bytes; exNodes are tiny and tracked separately
// without a budget.
//
// Replacement is LRU by default (the paper's policy), but the cache accepts a
// policy::EvictionPolicy to rank victims differently — angular distance from
// the cursor, or the hybrid policy that shields the demand working set from
// prefetch pollution. A policy may also *reject* an insert (admission
// control); rejected inserts leave the cache untouched. Entries remember
// whether the prefetcher brought them in and whether a demand request has
// since used them, which is what the pollution accounting and the
// useful-prefetch metrics are built on.
//
// Entries are keyed by (ViewSetId, lod): the continuous-LOD path caches a
// coarse tier of a view set next to (never in place of) the full-resolution
// bytes, so a demand hit on the full key can never be silently served coarse.
// lod 0 is full resolution; higher lods are coarser tiers.
//
// Thread-safe: the multi-client session driver hammers one shared agent's
// cache from concurrent fetch completions, and the decompress pipeline holds
// payloads while the simulator thread keeps evicting. All operations take an
// internal mutex, and get() hands out shared ownership of the payload so a
// reader is never left holding bytes that a concurrent put() just evicted.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "lightfield/lattice.hpp"
#include "policy/eviction.hpp"
#include "util/bytes.hpp"
#include "util/vec3.hpp"

namespace lon::streaming {

class ViewSetCache {
 public:
  explicit ViewSetCache(std::uint64_t budget_bytes) : budget_(budget_bytes) {}

  /// Installs a replacement policy and the lattice used to measure each
  /// entry's angular distance from the cursor. Null policy = plain LRU.
  void configure(const lightfield::SphericalLattice* lattice,
                 std::unique_ptr<policy::EvictionPolicy> policy) {
    std::lock_guard lock(mutex_);
    lattice_ = lattice;
    policy_ = std::move(policy);
  }

  /// Updates the cursor position the angular policies measure against.
  void set_cursor(const Spherical& dir) {
    std::lock_guard lock(mutex_);
    cursor_ = dir;
    has_cursor_ = true;
  }

  /// Inserts (or refreshes) an entry, evicting entries per policy to stay
  /// within budget. Items larger than the whole budget are not cached, and
  /// the policy may reject the insert outright. Returns whether the entry
  /// was cached.
  bool put(const lightfield::ViewSetId& id, Bytes data, bool prefetched = false,
           int lod = 0) {
    return put(id, std::make_shared<const Bytes>(std::move(data)), prefetched, lod);
  }

  /// Shared-ownership insert: the cache aliases the caller's payload instead
  /// of deep-copying it. This is the demand-path overload — finish_fetch
  /// already holds the decoded bytes in a shared_ptr.
  bool put(const lightfield::ViewSetId& id, std::shared_ptr<const Bytes> data,
           bool prefetched = false, int lod = 0);

  /// Returns shared ownership of the bytes (empty on miss) and marks the
  /// entry most recently used — and, on a demand lookup, *demand-used*. If a
  /// demand lookup is the first hit on a prefetched entry,
  /// `first_prefetch_hit` (when non-null) is set — the "useful prefetch"
  /// signal. The payload stays valid after eviction for as long as the
  /// caller holds the pointer.
  [[nodiscard]] std::shared_ptr<const Bytes> get(const lightfield::ViewSetId& id,
                                                 bool* first_prefetch_hit = nullptr,
                                                 bool demand = true, int lod = 0);

  /// Lookup without touching recency (for inspection).
  [[nodiscard]] bool contains(const lightfield::ViewSetId& id, int lod = 0) const {
    std::lock_guard lock(mutex_);
    return map_.contains(Key{id, lod});
  }

  /// Finest coarse tier (smallest lod > 0, scanning up to `max_lod`) cached
  /// for this id, or 0 when only the full-resolution entry (or nothing) is
  /// cached. This is what the agent serves while the full fetch would blow
  /// the deadline.
  [[nodiscard]] int best_coarse_lod(const lightfield::ViewSetId& id, int max_lod) const {
    std::lock_guard lock(mutex_);
    for (int lod = 1; lod <= max_lod; ++lod) {
      if (map_.contains(Key{id, lod})) return lod;
    }
    return 0;
  }

  /// Drops every coarse (lod > 0) entry for this id — the refinement swap:
  /// once full-resolution bytes land, stale coarse substitutes must never be
  /// served again. Returns how many entries were removed.
  std::size_t erase_coarse(const lightfield::ViewSetId& id, int max_lod) {
    std::lock_guard lock(mutex_);
    std::size_t removed = 0;
    for (int lod = 1; lod <= max_lod; ++lod) {
      auto it = map_.find(Key{id, lod});
      if (it == map_.end()) continue;
      used_ -= it->second->data->size();
      lru_.erase(it->second);
      map_.erase(it);
      ++removed;
    }
    return removed;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard lock(mutex_);
    return map_.size();
  }
  [[nodiscard]] std::uint64_t bytes_used() const {
    std::lock_guard lock(mutex_);
    return used_;
  }
  [[nodiscard]] std::uint64_t budget() const { return budget_; }
  [[nodiscard]] std::uint64_t evictions() const {
    std::lock_guard lock(mutex_);
    return evictions_;
  }
  /// Evictions of prefetched entries that never served a demand request.
  [[nodiscard]] std::uint64_t pollution_evictions() const {
    std::lock_guard lock(mutex_);
    return pollution_evictions_;
  }
  /// Inserts the policy refused to make room for.
  [[nodiscard]] std::uint64_t rejected_inserts() const {
    std::lock_guard lock(mutex_);
    return rejected_inserts_;
  }
  /// Distinct prefetched entries that later served a demand request.
  [[nodiscard]] std::uint64_t prefetch_hits() const {
    std::lock_guard lock(mutex_);
    return prefetch_hits_;
  }

 private:
  struct Key {
    lightfield::ViewSetId id;
    int lod = 0;
    bool operator==(const Key& other) const {
      return lod == other.lod && id == other.id;
    }
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const {
      return lightfield::ViewSetIdHash{}(key.id) * 31u +
             static_cast<std::size_t>(key.lod);
    }
  };
  struct Entry {
    lightfield::ViewSetId id;
    int lod = 0;
    std::shared_ptr<const Bytes> data;
    std::uint64_t last_use = 0;
    bool prefetched = false;
    bool demand_used = false;
  };
  using List = std::list<Entry>;

  void evict_lru_to_fit(std::uint64_t incoming);  // caller holds mutex_
  void account_eviction(const Entry& victim);     // caller holds mutex_
  [[nodiscard]] double cursor_distance(const lightfield::ViewSetId& id) const;

  const std::uint64_t budget_;
  mutable std::mutex mutex_;
  std::uint64_t used_ = 0;
  std::uint64_t evictions_ = 0;
  std::uint64_t pollution_evictions_ = 0;
  std::uint64_t rejected_inserts_ = 0;
  std::uint64_t prefetch_hits_ = 0;
  std::uint64_t seq_ = 0;  // monotonic use counter feeding Entry::last_use
  List lru_;               // front = most recent
  std::unordered_map<Key, List::iterator, KeyHash> map_;
  const lightfield::SphericalLattice* lattice_ = nullptr;
  std::unique_ptr<policy::EvictionPolicy> policy_;
  Spherical cursor_{};
  bool has_cursor_ = false;
};

inline double ViewSetCache::cursor_distance(const lightfield::ViewSetId& id) const {
  if (lattice_ == nullptr || !has_cursor_) return 0.0;
  return angular_distance(cursor_, lattice_->view_set_center(id));
}

inline void ViewSetCache::account_eviction(const Entry& victim) {
  used_ -= victim.data->size();
  ++evictions_;
  if (victim.prefetched && !victim.demand_used) ++pollution_evictions_;
}

inline void ViewSetCache::evict_lru_to_fit(std::uint64_t incoming) {
  while (used_ + incoming > budget_ && !lru_.empty()) {
    const Entry& victim = lru_.back();
    account_eviction(victim);
    map_.erase(Key{victim.id, victim.lod});
    lru_.pop_back();
  }
}

inline bool ViewSetCache::put(const lightfield::ViewSetId& id,
                              std::shared_ptr<const Bytes> data, bool prefetched,
                              int lod) {
  std::lock_guard lock(mutex_);
  // Drop any existing entry for this (id, lod) first: even when the new
  // payload is too big to cache, serving the old (possibly invalidated)
  // version from get() would be worse than a miss.
  auto it = map_.find(Key{id, lod});
  if (it != map_.end()) {
    used_ -= it->second->data->size();
    lru_.erase(it->second);
    map_.erase(it);
  }
  const std::uint64_t incoming = data->size();
  if (incoming > budget_) return false;  // would evict everything for nothing

  if (policy_ == nullptr) {
    evict_lru_to_fit(incoming);
  } else if (used_ + incoming > budget_) {
    // Collect victims first, commit only if the policy makes enough room: a
    // rejected insert must leave the cache exactly as it found it.
    const policy::CacheInsertInfo insert{id, incoming, prefetched, cursor_distance(id)};
    std::vector<policy::CacheEntryInfo> snapshot;
    std::vector<List::iterator> snapshot_its;
    snapshot.reserve(lru_.size());
    for (auto e = lru_.begin(); e != lru_.end(); ++e) {
      snapshot.push_back({e->id, e->data->size(), e->last_use, e->prefetched,
                          e->demand_used, cursor_distance(e->id)});
      snapshot_its.push_back(e);
    }
    std::vector<List::iterator> victims;
    std::uint64_t freed = 0;
    while (used_ - freed + incoming > budget_) {
      const auto pick = policy_->pick_victim(snapshot, insert);
      if (!pick) {
        ++rejected_inserts_;
        return false;
      }
      freed += snapshot[*pick].bytes;
      victims.push_back(snapshot_its[*pick]);
      snapshot.erase(snapshot.begin() + static_cast<std::ptrdiff_t>(*pick));
      snapshot_its.erase(snapshot_its.begin() + static_cast<std::ptrdiff_t>(*pick));
    }
    for (auto victim : victims) {
      account_eviction(*victim);
      map_.erase(Key{victim->id, victim->lod});
      lru_.erase(victim);
    }
  }
  used_ += incoming;
  lru_.push_front(Entry{id, lod, std::move(data), ++seq_, prefetched, false});
  map_[Key{id, lod}] = lru_.begin();
  return true;
}

inline std::shared_ptr<const Bytes> ViewSetCache::get(const lightfield::ViewSetId& id,
                                                      bool* first_prefetch_hit,
                                                      bool demand, int lod) {
  std::lock_guard lock(mutex_);
  if (first_prefetch_hit != nullptr) *first_prefetch_hit = false;
  auto it = map_.find(Key{id, lod});
  if (it == map_.end()) return nullptr;
  Entry& entry = *it->second;
  if (demand) {
    if (entry.prefetched && !entry.demand_used) {
      ++prefetch_hits_;
      if (first_prefetch_hit != nullptr) *first_prefetch_hit = true;
    }
    entry.demand_used = true;
  }
  entry.last_use = ++seq_;
  lru_.splice(lru_.begin(), lru_, it->second);  // move to front
  return entry.data;
}

}  // namespace lon::streaming
