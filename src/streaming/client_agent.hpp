// The client agent — paper section 3.5.
//
// "Since the client agent handles communication and caching on behalf of the
// client, the client only requires a low amount of computing and storage
// capability. ... the client agent maintains a cache of both view sets and
// the exNodes of view sets recently downloaded or pre-fetched."
//
// Request path for a view set, in order:
//   1. the agent's own memory cache (a *hit*);
//   2. a depot on the client's LAN, if the view set has been prestaged there;
//   3. the wide area network (LoRS multi-stream download from the server
//      depots named by the exNode, obtained from the DVS).
//
// Two anticipation mechanisms run on top:
//   * quadrant prefetch (figure 4): the cursor's quadrant within the current
//     view set selects the three neighbouring view sets to pull into the
//     agent cache;
//   * aggressive two-stage prestaging (figure 5): while the WAN is
//     otherwise idle, third-party copies stage *every* view set onto LAN
//     depots, ordered by angular proximity to the cursor and reordered as it
//     moves, without the data ever passing through the agent.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lbone/lbone.hpp"
#include "lightfield/lattice.hpp"
#include "lightfield/viewset.hpp"
#include "lors/lors.hpp"
#include "obs/obs.hpp"
#include "policy/eviction.hpp"
#include "policy/latency.hpp"
#include "policy/lod.hpp"
#include "policy/motion.hpp"
#include "policy/prefetch.hpp"
#include "streaming/admission.hpp"
#include "streaming/cache.hpp"
#include "streaming/dvs.hpp"
#include "streaming/pipeline.hpp"
#include "streaming/types.hpp"

namespace lon::streaming {

class SiteCache;

/// Modeled cost of serving a view set out of the agent's memory cache —
/// the ~1e-4 s "hit" line of figure 12.
inline constexpr SimDuration kAgentHitLatency = 100 * kMicrosecond;

/// Graceful-degradation ladder. Under sustained deadline misses the agent
/// descends one rung at a time, shrinking how much work each interaction
/// costs; sustained on-time deliveries climb back up. Order matters and is
/// tested: LAN-only restriction comes before dropping resolution, which
/// comes before suppressing anticipation entirely.
enum class DegradeLevel {
  kFull,        ///< normal operation
  kLanOnly,     ///< prefetch only what is already on LAN depots
  kCoarseLod,   ///< serve WAN demand misses from the coarse-resolution database
  kDemandOnly,  ///< no prefetch, no staging: demand traffic only
};

[[nodiscard]] const char* to_string(DegradeLevel level);

/// How a delivery concluded. kShed is an explicit overload refusal (local
/// admission control or the generation tier): the payload is empty but the
/// request is retryable and must not be treated as a depot failure.
enum class DeliveryStatus { kOk, kFailed, kShed };

struct ClientAgentConfig {
  std::uint64_t cache_bytes = 512ull << 20;  ///< agent view-set cache budget

  bool prefetch = true;                      ///< master prefetch switch

  // --- Policy engine --------------------------------------------------------

  /// Which sets to prefetch: the paper's quadrant policy (figure 4) or the
  /// motion-model-driven predictive scheduler. Ignored when !prefetch.
  policy::PrefetchStrategy prefetch_strategy = policy::PrefetchStrategy::kQuadrant;
  /// Cache replacement: LRU (paper), angular distance, or the hybrid that
  /// protects the demand working set from prefetch pollution.
  policy::EvictionStrategy eviction = policy::EvictionStrategy::kLru;
  policy::MotionConfig motion;                    ///< cursor motion model knobs
  policy::FetchLatencyEstimator::Config latency;  ///< per-class latency priors
  /// How far ahead (virtual time) the predictive policy may schedule.
  SimDuration prefetch_horizon = 2 * kSecond;
  /// Concurrent prefetch fetches allowed (0 = unlimited, the legacy
  /// behaviour of issuing every quadrant target).
  std::size_t prefetch_max_inflight = 0;
  /// Byte budget for in-flight prefetches, charged at the EWMA of observed
  /// payload sizes (0 = unlimited).
  std::uint64_t prefetch_max_bytes = 0;

  bool staging = false;                      ///< aggressive prestaging (figure 5)
  std::vector<std::string> lan_depots;       ///< staging targets (round-robin)
  int staging_concurrency = 4;               ///< third-party copies in flight
  enum class StagingOrder { kProximity, kFifo };
  StagingOrder staging_order = StagingOrder::kProximity;
  /// Ablation of the paper's suggested improvement: "suppressing prefetching
  /// while processing a miss may reduce this effect."
  bool pause_staging_on_miss = false;
  SimDuration staging_lease = 24 * 3600 * kSecond;

  sim::TransferOptions wan_net{.weight = 1.0, .streams = 4};
  sim::TransferOptions lan_net{.weight = 1.0, .streams = 2};
  sim::TransferOptions staging_net{.weight = 1.0, .streams = 4};

  /// Replicas closer than this count as "on the client's LAN" when
  /// classifying where an access was served from.
  SimDuration lan_threshold = 5 * kMillisecond;

  // --- Self-healing ---------------------------------------------------------

  /// Per-download retry discipline handed to LoRS (rounds over the replica
  /// set with backoff). Distinct from max_refetch, which re-*resolves*.
  lors::RetryPolicy retry;
  /// After a download fails outright, how many times the agent invalidates
  /// its cached exNode and re-resolves through the DVS before giving up —
  /// the cure for stale exNodes (expired leases, revoked soft allocations).
  int max_refetch = 2;
  /// Keep staged (soft, leased) copies alive: periodically extend every
  /// staged view set's allocations. Off by default; enable for long sessions
  /// where the staging lease is shorter than the visualization.
  bool lease_refresh = false;
  SimDuration lease_refresh_interval = 0;  ///< 0 = staging_lease / 4
  /// When a staged copy turns out dead (failed download or failed refresh),
  /// queue the view set for prestaging again.
  bool restage_on_failure = true;
  /// Cooperative site cache shared by every co-sited agent (null = none).
  /// With it, staging first consults the shared index (adopting copies a
  /// neighbour already staged), restages of the same view set coalesce into
  /// one WAN fetch, and lease expiry invalidates all agents atomically.
  SiteCache* site_cache = nullptr;

  // --- Concurrency ----------------------------------------------------------

  /// Pool for CPU-bound demand-path work: batched stripe verification inside
  /// LoRS and the decompress pipeline. Null = ThreadPool::shared() when the
  /// pipeline is on, serial LoRS verification otherwise.
  ThreadPool* pool = nullptr;
  /// Overlap chunk decompression of chunked (LFZC) payloads with the
  /// still-in-flight stripe transfers of the same download. Deliveries then
  /// carry the pre-decoded view set plus the per-chunk virtual arrival
  /// record the client replays to charge only the unhidden decode tail.
  bool pipeline_decompress = false;
  /// Chunk decodes in flight before the pipeline's producer blocks
  /// (0 = twice the pool size).
  std::size_t pipeline_inflight = 0;

  // --- Overload protection --------------------------------------------------

  /// Admission control over the demand path: bounded in-service demand
  /// fetches, per-client fair-share token buckets (keyed by the requesting
  /// client's node id) and deadline triage against the latency estimator.
  /// Disabled by default — legacy behaviour admits everything.
  AdmissionConfig admission;
  /// The client's time-to-need: an interactive deadline for one access.
  /// Feeds both admission triage and the degradation ladder. 0 = none.
  SimDuration deadline = 0;
  /// Master switch for the graceful-degradation ladder.
  bool degrade = false;
  int degrade_after_misses = 3;  ///< consecutive deadline misses per downgrade
  int upgrade_after_hits = 8;    ///< consecutive on-time deliveries per upgrade
  /// Shed/degrade events on one view set before the agent reports it hot to
  /// the DVS (which relays to the server agent for replica augmentation).
  /// 0 = no reporting.
  int hot_report_threshold = 0;

  // --- Continuous LOD streaming ---------------------------------------------

  /// One coarse tier of the scene: the same lattice geometry published at a
  /// lower view resolution, with its own DVS namespace (see
  /// lightfield::MultiDatabase::lod_ladder). Tier k serves lod k+1.
  struct LodTier {
    DvsServer* dvs = nullptr;
    std::size_t resolution = 0;
  };
  /// Coarse tiers, finest first. With the ladder (`degrade`) the kCoarseLod
  /// rung uses the coarsest tier; with `lod_streaming` the policy selector
  /// picks a tier per demand access. Empty = single-resolution delivery.
  std::vector<LodTier> lod_tiers;
  /// Per-access LOD selection: when the latency estimator predicts a
  /// full-resolution fetch would miss `deadline`, serve the finest coarse
  /// tier that fits instead — degrade resolution, never fluidity.
  bool lod_streaming = false;
  /// After a coarse demand serve, fetch the full-resolution bytes in the
  /// background and swap them into the cache (progressive refinement).
  bool lod_refine = true;
  /// A tier is only picked if its predicted fetch fits within this fraction
  /// of the remaining deadline budget.
  double lod_headroom = 0.8;
};

class ClientAgent {
 public:
  struct Stats {
    std::uint64_t requests = 0;        ///< demand requests from clients
    std::uint64_t hits = 0;            ///< served from the agent cache
    std::uint64_t lan_accesses = 0;    ///< served from a LAN depot
    std::uint64_t wan_accesses = 0;    ///< served across the WAN
    std::uint64_t prefetches = 0;      ///< prefetch fetches issued
    std::uint64_t staged = 0;          ///< view sets fully prestaged
    std::uint64_t staging_failures = 0;
    std::uint64_t refetches = 0;       ///< failed downloads retried end-to-end
    std::uint64_t invalidations = 0;   ///< exNodes evicted as stale
    std::uint64_t restaged = 0;        ///< view sets queued for staging again
    std::uint64_t lease_refreshes = 0; ///< staged replicas whose lease was renewed
    std::uint64_t pipelined = 0;       ///< deliveries pre-decoded by the pipeline
    std::uint64_t predictions = 0;     ///< targets proposed by the prefetch policy
    std::uint64_t prefetch_useful = 0; ///< prefetches a demand request benefited from
    std::uint64_t pipeline_aborts = 0; ///< abandoned download attempts drained
    std::uint64_t pollution_evictions = 0;  ///< unused prefetches evicted
    std::uint64_t rejected_prefetch = 0;    ///< prefetch inserts refused admission
    std::uint64_t demand_shed = 0;       ///< demand requests answered with kShed
    std::uint64_t shed_queue_full = 0;   ///< ... because the demand queue was full
    std::uint64_t shed_no_tokens = 0;    ///< ... because the client's bucket was dry
    std::uint64_t shed_deadline = 0;     ///< ... because completion was predicted late
    std::uint64_t downgrades = 0;        ///< ladder steps down
    std::uint64_t upgrades = 0;          ///< ladder steps back up
    std::uint64_t degrade_lan_only = 0;  ///< WAN prefetch targets skipped (kLanOnly)
    std::uint64_t degrade_lod = 0;       ///< accesses served coarse (kCoarseLod)
    std::uint64_t degrade_demand_only = 0;  ///< prefetch rounds suppressed
    std::uint64_t hot_reports = 0;       ///< demand-pressure reports sent to the DVS
    std::uint64_t lod_coarse_serves = 0; ///< demand deliveries at a coarse tier
    std::uint64_t lod_refinements = 0;   ///< background full-res upgrades started
    std::uint64_t lod_refined = 0;       ///< upgrades that swapped full-res bytes in
    /// Payload bytes physically copied on the demand path (network landing
    /// passes plus any decode fallback staging). Warm cache hits add zero;
    /// a cold fetch adds exactly one pass over its compressed payload.
    std::uint64_t payload_copy_bytes = 0;
    std::uint64_t restage_coalesced = 0; ///< restages joined to another agent's flight
    std::uint64_t site_hits = 0;         ///< demand resolves served via the site index
    std::uint64_t site_adopted = 0;      ///< staging targets adopted from the site index
    std::uint64_t stage_wan_bytes = 0;   ///< payload bytes this agent staged over the WAN
    int demand_wan_active = 0;           ///< WAN demand downloads in flight now
  };

  ClientAgent(sim::Simulator& sim, sim::Network& net, ibp::Fabric& fabric,
              lors::Lors& lors, DvsServer& dvs,
              const lightfield::SphericalLattice& lattice, sim::NodeId node,
              ClientAgentConfig config, obs::Context* obs = nullptr);
  ~ClientAgent();

  [[nodiscard]] sim::NodeId node() const { return node_; }
  [[nodiscard]] const ClientAgentConfig& config() const { return config_; }

  /// Delivery of a view set to a requesting client. `comm_latency` is the
  /// data-access time as measured at the agent (figure 12); `cls` says where
  /// the bytes came from. Empty payload = the view set could not be obtained.
  struct Delivery {
    std::shared_ptr<const Bytes> payload;  ///< compressed bytes (never null)
    AccessClass cls = AccessClass::kWan;
    SimDuration comm_latency = 0;
    /// Set when the decompress pipeline decoded the payload while its
    /// stripes were still arriving; clients use it instead of decompressing
    /// the payload again.
    std::shared_ptr<const lightfield::ViewSet> view_set;
    /// The pipeline's virtual-time record (null when not pipelined) — input
    /// to residual_decompress_time for the client's modeled charge.
    std::shared_ptr<const DecompressPipeline::Report> pipeline;
    /// kShed = overload refusal (retry with backoff); kFailed = the view set
    /// could not be obtained. Either way the payload is empty.
    DeliveryStatus status = DeliveryStatus::kOk;
    /// Payload bytes physically copied to produce this delivery: 0 for a
    /// cache hit (the slab is handed over by reference), one pass over the
    /// compressed payload for a cold fetch. Feeds AccessRecord.copied_bytes
    /// and the bytes-copied-per-access perf gate.
    std::uint64_t copied_bytes = 0;
    /// The payload is a coarse-resolution substitute (LOD streaming pick or
    /// the kCoarseLod rung) — not the canonical full-resolution view set.
    bool degraded_lod = false;
    /// Which tier served this delivery: 0 = full resolution, k >= 1 = the
    /// k-th coarse tier (degraded_lod == (lod > 0)).
    int lod = 0;
  };
  using RichDeliverCallback = std::function<void(const Delivery&)>;

  /// Legacy delivery signature (payload, class, comm latency).
  using DeliverCallback =
      std::function<void(const Bytes& compressed, AccessClass cls, SimDuration comm_latency)>;

  /// Demand request from a client (invoked at agent time — the client models
  /// its own network legs). Triggers the access path above. `parent_span`
  /// carries the client's request span across the client->agent hop so the
  /// whole lifeline nests in one trace.
  void request_view_set(const lightfield::ViewSetId& id, RichDeliverCallback on_done,
                        obs::SpanId parent_span = 0);
  void request_view_set(const lightfield::ViewSetId& id, DeliverCallback on_done,
                        obs::SpanId parent_span = 0);
  /// Variant carrying the requesting client's identity, which keys the
  /// per-client fair-share token bucket. The identity-less overloads charge
  /// everything to one aggregate bucket (the agent's own node).
  void request_view_set(const lightfield::ViewSetId& id, sim::NodeId requester,
                        RichDeliverCallback on_done, obs::SpanId parent_span = 0);

  /// Cursor update from the client: drives quadrant prefetch and reorders
  /// the prestaging queue by proximity.
  void notify_cursor(const Spherical& dir);

  /// Begins aggressive prestaging of the entire database (no-op unless
  /// config.staging). "As soon as visualization of a dataset begins,
  /// aggressive prestaging to the LAN depot is initiated, and continues
  /// uninterrupted until the entire dataset has been localized."
  void start_staging();

  /// Variant that first discovers staging depots through the L-Bone — "we
  /// use the L-Bone tools to dynamically identify appropriate depots to
  /// serve as the network caches" (paper section 2.2). Picks up to `count`
  /// nearby depots that can each hold roughly 1/count of the database for
  /// `lease`, replacing config.lan_depots. Enables staging if disabled.
  /// Returns how many depots were selected (0 = staging cannot start).
  std::size_t start_staging(const lbone::Directory& directory, std::size_t count,
                            std::uint64_t database_bytes, SimDuration lease);

  /// Stops the lease-refresh daemon (started automatically by start_staging
  /// when config.lease_refresh is set). Safe to call when not running.
  void stop_lease_refresh();

  [[nodiscard]] bool staging_complete() const {
    return unstaged_.empty() && staging_inflight_ == 0;
  }
  [[nodiscard]] bool is_staged(const lightfield::ViewSetId& id) const {
    return staged_.contains(id);
  }
  /// Compatibility view over the obs registry counters.
  [[nodiscard]] const Stats& stats() const;
  [[nodiscard]] const ViewSetCache& cache() const { return cache_; }
  /// Prefetch fetches currently in flight (for budget tests).
  [[nodiscard]] std::size_t prefetch_inflight() const { return prefetch_inflight_; }
  [[nodiscard]] const policy::CursorMotionModel& motion_model() const { return motion_; }
  /// Current rung of the graceful-degradation ladder.
  [[nodiscard]] DegradeLevel degrade_level() const { return level_; }
  /// Demand fetches currently in service (the admission queue depth).
  [[nodiscard]] int demand_inflight() const { return demand_inflight_; }
  /// WAN demand downloads in flight right now. Balance invariant: zero
  /// whenever the agent is idle — every increment in download() must be
  /// matched across the shed/retry/coarse completion paths.
  [[nodiscard]] int demand_wan_active() const { return demand_wan_active_; }

 private:
  struct Waiter {
    RichDeliverCallback cb;
    SimTime arrived = 0;
    bool demand = false;  ///< prefetches pass a null callback
    obs::SpanId parent = 0;
  };
  struct Inflight {
    std::vector<Waiter> waiters;
    AccessClass cls = AccessClass::kWan;
    int attempts = 0;  ///< end-to-end re-resolutions consumed so far
    obs::SpanId span = 0;  ///< agent.fetch span covering the whole fetch
    SimTime started = 0;   ///< when the fetch began (feeds the latency EWMA)
    bool prefetch_origin = false;  ///< started by the prefetcher
    bool demand_joined = false;    ///< a demand request later joined it
    std::uint64_t prefetch_charge = 0;  ///< bytes charged to the prefetch budget
    int lod = 0;                   ///< tier being fetched (0 = full resolution)
    bool refinement = false;       ///< background full-res upgrade of a coarse serve
    bool shed_upstream = false;    ///< the generation tier shed this request
    /// The flight resolved through a staged/site copy. On a failed retry the
    /// agent drops that copy exactly once (see the drop_staged plumbing) —
    /// this is what keeps Stats::restaged from double-counting one incident.
    bool from_staged = false;
  };

  struct Metrics {
    obs::Counter& requests;
    obs::Counter& hits;
    obs::Counter& lan_accesses;
    obs::Counter& wan_accesses;
    obs::Counter& prefetches;
    obs::Counter& staged;
    obs::Counter& staging_failures;
    obs::Counter& refetches;
    obs::Counter& invalidations;
    obs::Counter& restaged;
    obs::Counter& lease_refreshes;
    obs::Counter& pipelined;
    obs::Counter& predictions;           ///< policy.predictions
    obs::Counter& prefetch_bytes;        ///< prefetch.bytes
    obs::Counter& prefetch_useful;       ///< prefetch.useful
    obs::Counter& prefetch_useful_bytes; ///< prefetch.useful_bytes
    obs::Counter& pollution_evictions;   ///< cache.pollution_evictions
    obs::Counter& rejected_prefetch;     ///< cache.rejected_prefetch
    obs::Counter& pipeline_aborts;       ///< agent.pipeline_aborts
    obs::Counter& demand_shed;           ///< agent.demand_shed
    obs::Counter& shed_queue_full;       ///< agent.shed_queue_full
    obs::Counter& shed_no_tokens;        ///< agent.shed_no_tokens
    obs::Counter& shed_deadline;         ///< agent.shed_deadline
    obs::Counter& downgrades;            ///< agent.downgrades
    obs::Counter& upgrades;              ///< agent.upgrades
    obs::Counter& degrade_lan_only;      ///< agent.degrade_lan_only
    obs::Counter& degrade_lod;           ///< agent.degrade_lod
    obs::Counter& degrade_demand_only;   ///< agent.degrade_demand_only
    obs::Counter& hot_reports;           ///< agent.hot_reports
    obs::Counter& lod_coarse_serves;     ///< agent.lod_coarse_serves
    obs::Counter& lod_refinements;       ///< agent.lod_refinements
    obs::Counter& lod_refined;           ///< agent.lod_refined
    obs::Counter& payload_copy_bytes;    ///< agent.payload_copy_bytes
    obs::Counter& restage_coalesced;     ///< agent.restage_coalesced
    obs::Counter& site_hits;             ///< agent.site_hits
    obs::Counter& site_adopted;          ///< agent.site_adopted
    obs::Counter& stage_wan_bytes;       ///< agent.stage_wan_bytes
  };

  /// Starts (or joins) a fetch of `id`; cb may be null for prefetch.
  void fetch(const lightfield::ViewSetId& id, RichDeliverCallback cb, bool demand,
             obs::SpanId parent = 0);

  /// Resolves the exNode (staged > cached > DVS) then downloads. A demand
  /// flight that would go to the WAN first asks choose_lod() whether a
  /// coarse tier should serve instead (`allow_coarse` breaks recursion when
  /// the coarse lookup itself missed).
  void resolve_and_download(const lightfield::ViewSetId& id, bool allow_coarse = true);

  /// Number of coarse tiers configured.
  [[nodiscard]] int max_lod() const {
    return static_cast<int>(config_.lod_tiers.size());
  }

  /// Which tier a fresh demand fetch of `id` should target right now: the
  /// ladder forces the coarsest tier at kCoarseLod and below; otherwise,
  /// with lod_streaming on, the selector fits the latency prediction into
  /// the remaining deadline budget. 0 = full resolution.
  [[nodiscard]] int choose_lod(const lightfield::ViewSetId& id, SimTime started) const;

  /// Tries to serve the flight for `id` from coarse tier `lod` (>= 1).
  /// Returns true if a coarse lookup was dispatched (it owns the flight).
  bool try_lod(const lightfield::ViewSetId& id, int lod);

  /// Kicks a background full-resolution fetch of `id` that will swap the
  /// coarse cache entry for the real bytes (no-op if one is already in
  /// flight, the full bytes are cached, or refinement is disabled).
  void start_refinement(const lightfield::ViewSetId& id);

  /// Feeds the degradation ladder one deadline outcome.
  void observe_deadline(bool miss);

  /// Counts shed/degrade pressure on `id`; past the threshold the DVS is
  /// told the view set is hot (fire-and-forget, triggers augmentation).
  void note_pressure(const lightfield::ViewSetId& id);

  /// Answers a demand request with an explicit kShed delivery.
  void deliver_shed(const lightfield::ViewSetId& id, AdmissionDecision reason,
                    RichDeliverCallback cb, obs::SpanId parent);

  /// Where a download of this exNode will be served from: LAN if the best
  /// reachable replica across all extents is within lan_threshold.
  [[nodiscard]] AccessClass classify(const exnode::ExNode& exnode) const;

  /// Best latency-class guess for fetching `id` right now (staged/known
  /// exNode → classify; unknown → WAN). Feeds the predictive scoring.
  [[nodiscard]] policy::FetchClass fetch_class_of(const lightfield::ViewSetId& id) const;

  /// Issues prefetches chosen by the policy, within the inflight/byte budget.
  void run_prefetch(const Spherical& dir);

  /// Mirrors the cache's pollution/rejection counters into the obs registry.
  void sync_cache_metrics();

  void download(const lightfield::ViewSetId& id, const exnode::ExNode& exnode,
                AccessClass cls);

  /// Completes a fetch: `data` is the pooled download slab (aliased into the
  /// cache and deliveries, never copied), `copied_bytes` the payload bytes
  /// physically copied obtaining it (LoRS landing passes).
  void finish_fetch(const lightfield::ViewSetId& id, std::shared_ptr<Bytes> data,
                    std::uint64_t copied_bytes,
                    const std::shared_ptr<DecompressPipeline>& pipeline = nullptr);

  /// Drops every cached belief about `id`. With drop_staged (the default)
  /// the staged entry and any shared site copy go too, and the id is queued
  /// for prestaging again; a retry whose flight never touched the staged
  /// copy passes false so a healthy (possibly just-restaged) replica is not
  /// destroyed — and restaged not double-counted — for a WAN-side failure.
  void invalidate(const lightfield::ViewSetId& id, bool drop_staged = true);

  /// Queues `id` for prestaging again (deduplicated against the queue).
  void queue_restage(const lightfield::ViewSetId& id);

  /// Site-cache fanout: a shared copy of `id` expired or died; drop the
  /// derived local state and requeue staging.
  void on_site_invalidate(const lightfield::ViewSetId& id);

  // Lease-refresh daemon.
  void start_lease_refresh();
  void lease_refresh_tick(SimDuration interval);

  // Staging machinery.
  void staging_pump();
  void stage_one(const lightfield::ViewSetId& id);
  [[nodiscard]] std::optional<std::size_t> pick_next_stage() const;

  sim::Simulator& sim_;
  sim::Network& net_;
  ibp::Fabric& fabric_;
  lors::Lors& lors_;
  DvsServer& dvs_;
  const lightfield::SphericalLattice& lattice_;
  sim::NodeId node_;
  ClientAgentConfig config_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;

  ViewSetCache cache_;
  std::unordered_map<lightfield::ViewSetId, exnode::ExNode, lightfield::ViewSetIdHash>
      exnode_cache_;
  std::unordered_map<lightfield::ViewSetId, Inflight, lightfield::ViewSetIdHash> inflight_;

  // Staging state.
  bool staging_active_ = false;
  std::vector<lightfield::ViewSetId> unstaged_;
  std::unordered_map<lightfield::ViewSetId, exnode::ExNode, lightfield::ViewSetIdHash>
      staged_;
  int staging_inflight_ = 0;
  std::unordered_set<lightfield::ViewSetId, lightfield::ViewSetIdHash>
      staging_ids_;  ///< view sets with a staging attempt in flight
  std::size_t staging_rr_ = 0;  ///< round-robin over LAN depots
  int demand_wan_active_ = 0;
  std::optional<sim::TimerId> refresh_timer_;
  std::optional<std::size_t> site_listener_;  ///< token in the site cache

  // Overload-protection state.
  AdmissionController admission_;
  DegradeLevel level_ = DegradeLevel::kFull;
  int miss_streak_ = 0;     ///< consecutive deadline misses at this rung
  int hit_streak_ = 0;      ///< consecutive on-time deliveries at this rung
  int demand_inflight_ = 0; ///< demand fetches in service (admission queue)
  std::unordered_map<lightfield::ViewSetId, int, lightfield::ViewSetIdHash>
      pressure_;  ///< shed/degrade events per id, toward hot_report_threshold

  lightfield::ViewSetId cursor_vs_{0, 0};

  // Policy engine state.
  policy::CursorMotionModel motion_;
  policy::FetchLatencyEstimator latency_;
  policy::LodSelector lod_selector_;
  std::vector<double> lod_cost_ratios_;  ///< per-tier cost vs a full fetch
  std::unique_ptr<policy::PrefetchPolicy> prefetch_policy_;
  std::size_t prefetch_inflight_ = 0;
  std::uint64_t prefetch_bytes_inflight_ = 0;
  double payload_bytes_ewma_ = 0.0;  ///< prefetch budget charge estimate
  std::uint64_t synced_pollution_ = 0;  ///< cache counters already mirrored
  std::uint64_t synced_rejected_ = 0;

  mutable Stats stats_view_;
};

}  // namespace lon::streaming
