// The Logistical File System layer of the network storage stack.
//
// The paper's Figure 1 stacks "Logistical File System" above the Logistical
// Runtime System: a hierarchical namespace whose files are exNodes — data
// that lives on IBP depots while only the name-to-exNode mapping is held by
// the file system service. mkdir/put/get/list/remove operate on the
// namespace; LfsClient composes them with LoRS so whole files can be written
// to and read from the network by path.
//
// (The DVS of the streaming system is a special-purpose sibling of this
// layer: a flat, hierarchy-routed dictionary tuned for view-set lookups.)
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "exnode/exnode.hpp"
#include "lors/lors.hpp"
#include "simnet/network.hpp"

namespace lon::lfs {

enum class LfsStatus {
  kOk,
  kNotFound,
  kExists,         ///< create over an existing entry of the wrong kind
  kNotDirectory,   ///< a path component is a file
  kIsDirectory,    ///< file operation on a directory
  kNotEmpty,       ///< remove on a non-empty directory
  kInvalidPath,
  kTransferFailed, ///< the LoRS upload/download underneath failed
};

[[nodiscard]] const char* to_string(LfsStatus status);

/// Splits "/a/b/c" into {"a","b","c"}; empty result = the root. Returns
/// nullopt for malformed paths (empty segments, bad characters).
[[nodiscard]] std::optional<std::vector<std::string>> parse_path(const std::string& path);

struct DirEntry {
  std::string name;
  bool is_directory = false;
  std::uint64_t length = 0;  ///< file length (0 for directories)
};

/// The namespace service, hosted at a network node. Per-operation cost is
/// one control round trip plus a lookup overhead per path component.
class LfsServer {
 public:
  LfsServer(sim::Simulator& sim, sim::Network& net, sim::NodeId node);

  [[nodiscard]] sim::NodeId node() const { return node_; }

  using StatusCallback = std::function<void(LfsStatus)>;
  using GetCallback = std::function<void(LfsStatus, const exnode::ExNode&)>;
  using ListCallback = std::function<void(LfsStatus, const std::vector<DirEntry>&)>;

  void mkdir_async(sim::NodeId from, const std::string& path, StatusCallback on_done);
  /// Creates or overwrites the file at `path` with the given exNode.
  void put_async(sim::NodeId from, const std::string& path, exnode::ExNode node,
                 StatusCallback on_done);
  void get_async(sim::NodeId from, const std::string& path, GetCallback on_done);
  void list_async(sim::NodeId from, const std::string& path, ListCallback on_done);
  /// Removes a file or an *empty* directory.
  void remove_async(sim::NodeId from, const std::string& path, StatusCallback on_done);

  // Synchronous local variants (bootstrap / tests).
  LfsStatus mkdir(const std::string& path);
  LfsStatus put(const std::string& path, exnode::ExNode node);
  LfsStatus get(const std::string& path, exnode::ExNode& out) const;
  LfsStatus list(const std::string& path, std::vector<DirEntry>& out) const;
  LfsStatus remove(const std::string& path);

  [[nodiscard]] std::size_t entry_count() const { return entries_; }

 private:
  struct Node {
    bool is_directory = true;
    exnode::ExNode file;  // valid when !is_directory
    std::map<std::string, std::unique_ptr<Node>> children;
  };

  /// Resolves the parent directory of `segments`; nullptr + status on error.
  Node* resolve_parent(const std::vector<std::string>& segments, LfsStatus* status);
  const Node* resolve(const std::vector<std::string>& segments, LfsStatus* status) const;

  /// Wraps a synchronous result with the control round trip + lookup cost.
  template <typename Fn>
  void rpc(sim::NodeId from, const std::string& path, Fn&& fn);

  sim::Simulator& sim_;
  sim::Network& net_;
  sim::NodeId node_;
  Node root_;
  std::size_t entries_ = 0;

  static constexpr SimDuration kLookupPerComponent = 50 * kMicrosecond;
};

/// Whole-file I/O by path: namespace + LoRS data movement.
class LfsClient {
 public:
  LfsClient(sim::Simulator& sim, lors::Lors& lors, LfsServer& server, sim::NodeId node)
      : sim_(sim), lors_(lors), server_(server), node_(node) {}

  using WriteCallback = std::function<void(LfsStatus)>;
  /// Uploads `data` via LoRS and binds the resulting exNode to `path`.
  void write_async(const std::string& path, Bytes data,
                   const lors::UploadOptions& options, WriteCallback on_done);

  using ReadCallback = std::function<void(LfsStatus, Bytes)>;
  /// Resolves `path` and downloads the file's bytes.
  void read_async(const std::string& path, const lors::DownloadOptions& options,
                  ReadCallback on_done);

 private:
  sim::Simulator& sim_;
  lors::Lors& lors_;
  LfsServer& server_;
  sim::NodeId node_;
};

}  // namespace lon::lfs
