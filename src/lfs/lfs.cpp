#include "lfs/lfs.hpp"

#include <cctype>

namespace lon::lfs {

const char* to_string(LfsStatus status) {
  switch (status) {
    case LfsStatus::kOk:
      return "ok";
    case LfsStatus::kNotFound:
      return "not-found";
    case LfsStatus::kExists:
      return "exists";
    case LfsStatus::kNotDirectory:
      return "not-directory";
    case LfsStatus::kIsDirectory:
      return "is-directory";
    case LfsStatus::kNotEmpty:
      return "not-empty";
    case LfsStatus::kInvalidPath:
      return "invalid-path";
    case LfsStatus::kTransferFailed:
      return "transfer-failed";
  }
  return "?";
}

std::optional<std::vector<std::string>> parse_path(const std::string& path) {
  if (path.empty() || path.front() != '/') return std::nullopt;
  std::vector<std::string> segments;
  std::string current;
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (current.empty()) {
        if (i != path.size()) return std::nullopt;  // "//" inside a path
      } else {
        segments.push_back(std::move(current));
        current.clear();
      }
    } else {
      const char c = path[i];
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
            c == '_')) {
        return std::nullopt;
      }
      if (current.size() > 255) return std::nullopt;
      current += c;
    }
  }
  for (const auto& segment : segments) {
    if (segment == "." || segment == "..") return std::nullopt;
  }
  return segments;
}

LfsServer::LfsServer(sim::Simulator& sim, sim::Network& net, sim::NodeId node)
    : sim_(sim), net_(net), node_(node) {}

const LfsServer::Node* LfsServer::resolve(const std::vector<std::string>& segments,
                                          LfsStatus* status) const {
  const Node* node = &root_;
  for (const auto& segment : segments) {
    if (!node->is_directory) {
      *status = LfsStatus::kNotDirectory;
      return nullptr;
    }
    const auto it = node->children.find(segment);
    if (it == node->children.end()) {
      *status = LfsStatus::kNotFound;
      return nullptr;
    }
    node = it->second.get();
  }
  *status = LfsStatus::kOk;
  return node;
}

LfsServer::Node* LfsServer::resolve_parent(const std::vector<std::string>& segments,
                                           LfsStatus* status) {
  if (segments.empty()) {
    *status = LfsStatus::kInvalidPath;  // operations need a named entry
    return nullptr;
  }
  const std::vector<std::string> parent(segments.begin(), segments.end() - 1);
  const Node* found = resolve(parent, status);
  if (found == nullptr) return nullptr;
  if (!found->is_directory) {
    *status = LfsStatus::kNotDirectory;
    return nullptr;
  }
  return const_cast<Node*>(found);
}

LfsStatus LfsServer::mkdir(const std::string& path) {
  const auto segments = parse_path(path);
  if (!segments.has_value()) return LfsStatus::kInvalidPath;
  LfsStatus status;
  Node* parent = resolve_parent(*segments, &status);
  if (parent == nullptr) return status;
  const std::string& name = segments->back();
  if (parent->children.contains(name)) return LfsStatus::kExists;
  auto node = std::make_unique<Node>();
  node->is_directory = true;
  parent->children.emplace(name, std::move(node));
  ++entries_;
  return LfsStatus::kOk;
}

LfsStatus LfsServer::put(const std::string& path, exnode::ExNode file) {
  const auto segments = parse_path(path);
  if (!segments.has_value()) return LfsStatus::kInvalidPath;
  LfsStatus status;
  Node* parent = resolve_parent(*segments, &status);
  if (parent == nullptr) return status;
  const std::string& name = segments->back();
  auto it = parent->children.find(name);
  if (it != parent->children.end()) {
    if (it->second->is_directory) return LfsStatus::kIsDirectory;
    it->second->file = std::move(file);  // overwrite
    return LfsStatus::kOk;
  }
  auto node = std::make_unique<Node>();
  node->is_directory = false;
  node->file = std::move(file);
  parent->children.emplace(name, std::move(node));
  ++entries_;
  return LfsStatus::kOk;
}

LfsStatus LfsServer::get(const std::string& path, exnode::ExNode& out) const {
  const auto segments = parse_path(path);
  if (!segments.has_value()) return LfsStatus::kInvalidPath;
  LfsStatus status;
  const Node* node = resolve(*segments, &status);
  if (node == nullptr) return status;
  if (node->is_directory) return LfsStatus::kIsDirectory;
  out = node->file;
  return LfsStatus::kOk;
}

LfsStatus LfsServer::list(const std::string& path, std::vector<DirEntry>& out) const {
  const auto segments = parse_path(path);
  if (!segments.has_value()) return LfsStatus::kInvalidPath;
  LfsStatus status;
  const Node* node = resolve(*segments, &status);
  if (node == nullptr) return status;
  if (!node->is_directory) return LfsStatus::kNotDirectory;
  out.clear();
  for (const auto& [name, child] : node->children) {
    DirEntry entry;
    entry.name = name;
    entry.is_directory = child->is_directory;
    entry.length = child->is_directory ? 0 : child->file.length();
    out.push_back(std::move(entry));
  }
  return LfsStatus::kOk;
}

LfsStatus LfsServer::remove(const std::string& path) {
  const auto segments = parse_path(path);
  if (!segments.has_value()) return LfsStatus::kInvalidPath;
  LfsStatus status;
  Node* parent = resolve_parent(*segments, &status);
  if (parent == nullptr) return status;
  auto it = parent->children.find(segments->back());
  if (it == parent->children.end()) return LfsStatus::kNotFound;
  if (it->second->is_directory && !it->second->children.empty()) {
    return LfsStatus::kNotEmpty;
  }
  parent->children.erase(it);
  --entries_;
  return LfsStatus::kOk;
}

template <typename Fn>
void LfsServer::rpc(sim::NodeId from, const std::string& path, Fn&& fn) {
  const auto segments = parse_path(path);
  const auto components = segments.has_value() ? segments->size() : 0;
  const SimDuration cost = net_.rtt(from, node_) +
                           static_cast<SimDuration>(components + 1) * kLookupPerComponent;
  sim_.after(cost, std::forward<Fn>(fn));
}

void LfsServer::mkdir_async(sim::NodeId from, const std::string& path,
                            StatusCallback on_done) {
  rpc(from, path, [this, path, cb = std::move(on_done)] { cb(mkdir(path)); });
}

void LfsServer::put_async(sim::NodeId from, const std::string& path, exnode::ExNode node,
                          StatusCallback on_done) {
  rpc(from, path, [this, path, node = std::move(node), cb = std::move(on_done)]() mutable {
    cb(put(path, std::move(node)));
  });
}

void LfsServer::get_async(sim::NodeId from, const std::string& path, GetCallback on_done) {
  rpc(from, path, [this, path, cb = std::move(on_done)] {
    exnode::ExNode out;
    const LfsStatus status = get(path, out);
    cb(status, out);
  });
}

void LfsServer::list_async(sim::NodeId from, const std::string& path,
                           ListCallback on_done) {
  rpc(from, path, [this, path, cb = std::move(on_done)] {
    std::vector<DirEntry> out;
    const LfsStatus status = list(path, out);
    cb(status, out);
  });
}

void LfsServer::remove_async(sim::NodeId from, const std::string& path,
                             StatusCallback on_done) {
  rpc(from, path, [this, path, cb = std::move(on_done)] { cb(remove(path)); });
}

void LfsClient::write_async(const std::string& path, Bytes data,
                            const lors::UploadOptions& options, WriteCallback on_done) {
  if (!parse_path(path).has_value()) {
    sim_.after(0, [cb = std::move(on_done)] { cb(LfsStatus::kInvalidPath); });
    return;
  }
  lors_.upload_async(
      node_, std::move(data), options,
      [this, path, cb = std::move(on_done)](const lors::UploadResult& result) {
        if (result.status != lors::LorsStatus::kOk) {
          cb(LfsStatus::kTransferFailed);
          return;
        }
        server_.put_async(node_, path, result.exnode,
                          [cb](LfsStatus status) { cb(status); });
      });
}

void LfsClient::read_async(const std::string& path, const lors::DownloadOptions& options,
                           ReadCallback on_done) {
  server_.get_async(node_, path,
                    [this, options, cb = std::move(on_done)](LfsStatus status,
                                                             const exnode::ExNode& node) {
                      if (status != LfsStatus::kOk) {
                        cb(status, Bytes{});
                        return;
                      }
                      lors_.download_async(node_, node, options,
                                           [cb](lors::DownloadResult result) {
                                             if (result.status != lors::LorsStatus::kOk) {
                                               cb(LfsStatus::kTransferFailed, Bytes{});
                                               return;
                                             }
                                             cb(LfsStatus::kOk, std::move(*result.data));
                                           });
                    });
}

}  // namespace lon::lfs
