#include "simnet/simulator.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

namespace lon::sim {
namespace {

constexpr std::size_t kMinBuckets = 16;
/// Day-width estimation samples this many of the earliest pending events.
constexpr std::size_t kWidthSamples = 32;
/// Drained bucket prefixes compact once they cross this length.
constexpr std::size_t kCompactThreshold = 64;

}  // namespace

Simulator::Simulator(SchedulerKind kind) : kind_(kind) {
  buckets_.resize(kMinBuckets);
  bucket_top_ = width_;
}

TimerId Simulator::at(SimTime when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::at: scheduling into the past");
  }
  const TimerId id = next_seq_++;
  live_.emplace(id, when);
  if (use_calendar()) {
    cal_insert(Event{when, id, std::move(fn)});
    if (kind_ == SchedulerKind::kCrossCheck) heap_.push(HeapEntry{when, id, nullptr});
  } else {
    heap_.push(HeapEntry{when, id, std::move(fn)});
  }
  return id;
}

TimerId Simulator::after(SimDuration delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::after: negative delay");
  return at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(TimerId id) {
  const auto it = live_.find(id);
  if (it == live_.end()) return false;  // already ran, already cancelled, or bogus
  if (use_calendar()) cal_erase(id, it->second);
  if (use_heap()) heap_tombstones_.insert(id);
  live_.erase(it);
  ++cancelled_count_;
  return true;
}

bool Simulator::step() {
  if (live_.empty()) return false;
  Event ev;
  if (use_calendar()) {
    ev = cal_pop();
    if (kind_ == SchedulerKind::kCrossCheck) {
      heap_drop_tombstones();
      if (heap_.empty() || heap_.top().time != ev.time || heap_.top().seq != ev.seq) {
        throw std::logic_error("Simulator cross-check: calendar/heap order diverged");
      }
      heap_.pop();
    }
  } else {
    heap_drop_tombstones();
    // Moving out of a priority_queue requires const_cast; the element is
    // popped immediately afterwards so this never observes the moved-from fn.
    auto& top = const_cast<HeapEntry&>(heap_.top());
    ev.time = top.time;
    ev.seq = top.seq;
    ev.fn = std::move(top.fn);
    heap_.pop();
  }
  now_ = ev.time;
  live_.erase(ev.seq);
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (const SimTime* next = next_event_time()) {
    if (*next > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

const SimTime* Simulator::next_event_time() {
  if (use_calendar()) {
    const Event* ev = cal_peek();
    return ev != nullptr ? &ev->time : nullptr;
  }
  heap_drop_tombstones();
  return heap_.empty() ? nullptr : &heap_.top().time;
}

void Simulator::heap_drop_tombstones() {
  while (!heap_.empty()) {
    const auto it = heap_tombstones_.find(heap_.top().seq);
    if (it == heap_tombstones_.end()) break;
    heap_tombstones_.erase(it);
    heap_.pop();
  }
}

// --- Calendar queue ---------------------------------------------------------

void Simulator::cal_insert(Event ev) {
  if (cal_size_ == 0 || ev.time < bucket_top_ - width_) {
    // Queue was empty, or the event lands on a day before the cursor's:
    // park the cursor on the event's day so the scan cannot pop a later
    // event first.
    cur_bucket_ = bucket_of(ev.time);
    bucket_top_ = (ev.time / width_ + 1) * width_;
  }
  cal_insert_sorted(buckets_[bucket_of(ev.time)], std::move(ev));
  ++cal_size_;
  if (cal_size_ > 2 * buckets_.size()) cal_resize(2 * buckets_.size());
}

void Simulator::cal_insert_sorted(Bucket& bucket, Event ev) {
  auto& events = bucket.events;
  // Hot path: appends dominate — new timers mostly land after what's queued.
  if (events.size() == bucket.head || events.back().time < ev.time ||
      (events.back().time == ev.time && events.back().seq < ev.seq)) {
    events.push_back(std::move(ev));
    return;
  }
  const auto pos = std::upper_bound(
      events.begin() + static_cast<std::ptrdiff_t>(bucket.head), events.end(), ev,
      [](const Event& a, const Event& b) {
        return a.time != b.time ? a.time < b.time : a.seq < b.seq;
      });
  events.insert(pos, std::move(ev));
}

const Simulator::Event* Simulator::cal_peek() {
  if (cal_size_ == 0) return nullptr;
  // Year scan: walk days forward from the cursor. The first day whose bucket
  // holds an event inside the day's window holds the global minimum — all
  // events of one day share one bucket, kept sorted ascending.
  const std::size_t nbuckets = buckets_.size();
  for (std::size_t i = 0; i < nbuckets; ++i) {
    const Bucket& bucket = buckets_[cur_bucket_];
    if (!bucket.empty() && bucket.front().time < bucket_top_) {
      return &bucket.front();
    }
    cur_bucket_ = (cur_bucket_ + 1) & (nbuckets - 1);
    bucket_top_ += width_;
  }
  // Nothing within a whole year: the earliest event is over nbuckets*width
  // away. Find it directly and jump the cursor to its day.
  const Event* min_ev = nullptr;
  std::size_t min_bucket = 0;
  for (std::size_t b = 0; b < nbuckets; ++b) {
    const Bucket& bucket = buckets_[b];
    if (bucket.empty()) continue;
    const Event& front = bucket.front();
    if (min_ev == nullptr || front.time < min_ev->time ||
        (front.time == min_ev->time && front.seq < min_ev->seq)) {
      min_ev = &front;
      min_bucket = b;
    }
  }
  cur_bucket_ = min_bucket;
  bucket_top_ = (min_ev->time / width_ + 1) * width_;
  return min_ev;
}

Simulator::Event Simulator::cal_pop() {
  cal_peek();  // parks the cursor on the minimum event's day
  Bucket& bucket = buckets_[cur_bucket_];
  Event ev = std::move(bucket.events[bucket.head]);
  ++bucket.head;
  if (bucket.empty()) {
    bucket.events.clear();
    bucket.head = 0;
  } else if (bucket.head >= kCompactThreshold && bucket.head * 2 >= bucket.events.size()) {
    bucket.events.erase(bucket.events.begin(),
                        bucket.events.begin() + static_cast<std::ptrdiff_t>(bucket.head));
    bucket.head = 0;
  }
  --cal_size_;
  if (buckets_.size() > kMinBuckets && cal_size_ < buckets_.size() / 2) {
    cal_resize(buckets_.size() / 2);
  }
  return ev;
}

void Simulator::cal_erase(TimerId id, SimTime time) {
  Bucket& bucket = buckets_[bucket_of(time)];
  auto& events = bucket.events;
  const Event key{time, id, nullptr};
  const auto pos = std::lower_bound(
      events.begin() + static_cast<std::ptrdiff_t>(bucket.head), events.end(), key,
      [](const Event& a, const Event& b) {
        return a.time != b.time ? a.time < b.time : a.seq < b.seq;
      });
  // live_ guarantees the event is queued, so pos is always an exact hit.
  events.erase(pos);
  if (bucket.empty()) {
    bucket.events.clear();
    bucket.head = 0;
  }
  --cal_size_;
  if (buckets_.size() > kMinBuckets && cal_size_ < buckets_.size() / 2) {
    cal_resize(buckets_.size() / 2);
  }
}

void Simulator::cal_resize(std::size_t nbuckets) {
  std::vector<Event> all;
  all.reserve(cal_size_);
  for (Bucket& bucket : buckets_) {
    for (std::size_t i = bucket.head; i < bucket.events.size(); ++i) {
      all.push_back(std::move(bucket.events[i]));
    }
    bucket.events.clear();
    bucket.head = 0;
  }

  // Re-derive the day width from the spacing of the earliest events: a day
  // should hold a handful of events, so ~3x the mean inter-event gap.
  if (all.size() >= 2) {
    const std::size_t k = std::min(all.size(), kWidthSamples);
    std::vector<SimTime> times;
    times.reserve(all.size());
    for (const Event& ev : all) times.push_back(ev.time);
    std::nth_element(times.begin(), times.begin() + static_cast<std::ptrdiff_t>(k - 1),
                     times.end());
    times.resize(k);
    std::sort(times.begin(), times.end());
    const SimTime span = times.back() - times.front();
    if (span > 0) {
      width_ = std::max<SimDuration>(1, 3 * span / static_cast<SimTime>(k - 1));
    }
  }

  buckets_.assign(nbuckets, Bucket{});
  cal_size_ = 0;
  if (all.empty()) {
    cur_bucket_ = bucket_of(now_);
    bucket_top_ = (now_ / width_ + 1) * width_;
    return;
  }
  SimTime min_time = all.front().time;
  for (const Event& ev : all) min_time = std::min(min_time, ev.time);
  cur_bucket_ = bucket_of(min_time);
  bucket_top_ = (min_time / width_ + 1) * width_;
  for (Event& ev : all) {
    cal_insert_sorted(buckets_[bucket_of(ev.time)], std::move(ev));
    ++cal_size_;
  }
}

}  // namespace lon::sim
