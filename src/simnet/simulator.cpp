#include "simnet/simulator.hpp"

#include <stdexcept>

namespace lon::sim {

void Simulator::at(SimTime when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::at: scheduling into the past");
  }
  queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void Simulator::after(SimDuration delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::after: negative delay");
  at(now_ + delay, std::move(fn));
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  // Moving out of a priority_queue requires const_cast; the element is
  // popped immediately afterwards so this never observes the moved-from fn.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().time <= deadline) {
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace lon::sim
