#include "simnet/simulator.hpp"

#include <stdexcept>

namespace lon::sim {

TimerId Simulator::at(SimTime when, EventFn fn) {
  if (when < now_) {
    throw std::invalid_argument("Simulator::at: scheduling into the past");
  }
  const TimerId id = next_seq_++;
  queue_.push(Event{when, id, std::move(fn)});
  return id;
}

TimerId Simulator::after(SimDuration delay, EventFn fn) {
  if (delay < 0) throw std::invalid_argument("Simulator::after: negative delay");
  return at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(TimerId id) {
  if (id >= next_seq_) return false;
  return cancelled_.insert(id).second;
}

void Simulator::drop_cancelled_head() {
  while (!queue_.empty() && cancelled_.contains(queue_.top().seq)) {
    cancelled_.erase(queue_.top().seq);
    queue_.pop();
  }
}

bool Simulator::step() {
  drop_cancelled_head();
  if (queue_.empty()) return false;
  // Moving out of a priority_queue requires const_cast; the element is
  // popped immediately afterwards so this never observes the moved-from fn.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.time;
  ++executed_;
  ev.fn();
  return true;
}

std::size_t Simulator::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t n = 0;
  for (;;) {
    drop_cancelled_head();
    if (queue_.empty() || queue_.top().time > deadline) break;
    step();
    ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace lon::sim
