#include "simnet/network.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace lon::sim {

namespace {

constexpr LinkId kNoLink = std::numeric_limits<LinkId>::max();
constexpr SimDuration kUnreachable = std::numeric_limits<SimDuration>::max();
constexpr double kRateEps = 1e-9;
constexpr double kBytesEps = 1e-6;

// Node-local transfers (src == dst) model a memory/loopback copy.
constexpr double kLocalBytesPerSec = 12.5e9;           // ~100 Gb/s
constexpr SimDuration kLocalOverhead = 20 * kMicrosecond;

}  // namespace

Network::Network(Simulator& sim, std::uint64_t jitter_seed)
    : sim_(sim), jitter_rng_(jitter_seed ? jitter_seed : 1), jitter_enabled_(jitter_seed != 0) {}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(std::move(name));
  adjacency_.emplace_back();
  routes_dirty_ = true;
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId id) const { return nodes_.at(id); }

LinkId Network::add_link(NodeId a, NodeId b, const LinkConfig& config) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("Network::add_link: unknown node");
  }
  if (a == b) throw std::invalid_argument("Network::add_link: self-loop");
  if (config.bandwidth_bps <= 0.0) {
    throw std::invalid_argument("Network::add_link: non-positive bandwidth");
  }
  if (config.latency < 0) {
    throw std::invalid_argument("Network::add_link: negative latency");
  }
  Link link;
  link.a = a;
  link.b = b;
  link.config = config;
  links_.push_back(link);
  const auto id = static_cast<LinkId>(links_.size() - 1);
  adjacency_[a].emplace_back(b, id);
  adjacency_[b].emplace_back(a, id);
  link_members_.resize(2 * links_.size());
  link_changed_.resize(2 * links_.size(), 0);
  link_visited_.resize(2 * links_.size(), 0);
  routes_dirty_ = true;
  return id;
}

void Network::set_link_up(LinkId id, bool up) {
  Link& link = links_.at(id);
  if (link.up == up) return;
  link.up = up;
  routes_dirty_ = true;
  // Flows already routed across the link stall (or resume) at the next
  // solve, which prices a down link at zero capacity; the deferred solve
  // runs at the current instant, so no virtual time passes in between.
  mark_link_changed(dir_link(id, true));
  mark_link_changed(dir_link(id, false));
  request_reallocate();
}

std::optional<LinkId> Network::link_between(NodeId a, NodeId b) const {
  if (a >= nodes_.size()) return std::nullopt;
  for (const auto& [neighbor, link] : adjacency_[a]) {
    if (neighbor == b) return link;
  }
  return std::nullopt;
}

void Network::recompute_routes() const {
  const std::size_t n = nodes_.size();
  next_hop_.assign(n, std::vector<LinkId>(n, kNoLink));
  latency_table_.assign(n, std::vector<SimDuration>(n, kUnreachable));

  // Dijkstra from every source over propagation latency.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<SimDuration> dist(n, kUnreachable);
    std::vector<LinkId> first_link(n, kNoLink);
    using Item = std::pair<SimDuration, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[src] = 0;
    pq.emplace(0, src);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (auto [v, link] : adjacency_[u]) {
        if (!links_[link].up) continue;
        const SimDuration nd = d + links_[link].config.latency;
        if (nd < dist[v]) {
          dist[v] = nd;
          first_link[v] = (u == src) ? link : first_link[u];
          pq.emplace(nd, v);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      latency_table_[src][dst] = dist[dst];
      next_hop_[src][dst] = first_link[dst];
    }
    // next_hop_[src][dst] holds the first link out of src toward dst; rebuild
    // hop-by-hop next hops by walking predecessors is unnecessary because we
    // recompute the full path from each intermediate node's own table.
  }
  routes_dirty_ = false;
}

SimDuration Network::path_latency(NodeId a, NodeId b) const {
  if (routes_dirty_) recompute_routes();
  if (a == b) return 0;
  const SimDuration d = latency_table_.at(a).at(b);
  if (d == kUnreachable) throw std::runtime_error("Network: nodes not connected");
  return d;
}

SimDuration Network::rtt(NodeId a, NodeId b) const { return 2 * path_latency(a, b); }

bool Network::reachable(NodeId a, NodeId b) const {
  if (routes_dirty_) recompute_routes();
  if (a >= nodes_.size() || b >= nodes_.size()) return false;
  return a == b || latency_table_[a][b] != kUnreachable;
}

std::vector<Network::DirLink> Network::route(NodeId src, NodeId dst) const {
  std::vector<DirLink> path;
  NodeId cur = src;
  while (cur != dst) {
    const LinkId link = next_hop_[cur][dst];
    if (link == kNoLink) throw std::runtime_error("Network: nodes not connected");
    const bool forward = links_[link].a == cur;
    path.push_back(dir_link(link, forward));
    cur = forward ? links_[link].b : links_[link].a;
  }
  return path;
}

FlowId Network::start_transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                               const TransferOptions& options, TransferCallback on_done) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::out_of_range("Network::start_transfer: unknown node");
  }
  if (options.weight <= 0.0 || options.streams < 1 || options.window_bytes == 0) {
    throw std::invalid_argument("Network::start_transfer: bad options");
  }
  if (routes_dirty_) recompute_routes();

  const FlowId id = next_flow_id_++;
  const SimTime started = sim_.now();

  // Node-local copies bypass the flow machinery entirely.
  if (src == dst) {
    const auto copy_time =
        static_cast<SimDuration>(static_cast<double>(bytes) / kLocalBytesPerSec * 1e9);
    sim_.after(kLocalOverhead + copy_time, [id, started, bytes, cb = std::move(on_done),
                                            this] {
      cb(TransferResult{id, started, sim_.now(), bytes, false});
    });
    return id;
  }

  const SimDuration nominal_latency = path_latency(src, dst);
  const SimDuration round_trip = 2 * nominal_latency;

  // Per-flow TCP throughput ceiling: streams * window / RTT.
  double cap = std::numeric_limits<double>::infinity();
  if (round_trip > 0) {
    cap = static_cast<double>(options.streams) *
          static_cast<double>(options.window_bytes) / to_seconds(round_trip);
  }

  // Latency jitter is sampled once per flow (per-path) from the seeded RNG.
  SimDuration delivery = nominal_latency;
  if (jitter_enabled_) {
    double factor = 1.0;
    for (const DirLink dl : route(src, dst)) {
      const Link& link = links_[dl / 2];
      if (link.config.jitter_frac > 0.0) {
        factor += link.config.jitter_frac * std::abs(jitter_rng_.normal());
      }
    }
    delivery = static_cast<SimDuration>(static_cast<double>(nominal_latency) * factor);
  }

  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.path = route(src, dst);
  flow.remaining = static_cast<double>(bytes);
  flow.bytes = bytes;
  flow.weight = options.weight;
  flow.rate_cap = cap;
  flow.started = started;
  flow.delivery_latency = delivery;
  flow.on_done = std::move(on_done);

  for (const DirLink dl : flow.path) {
    Link& link = links_[dl / 2];
    LinkStats& stats = (dl % 2 == 0) ? link.stats_fwd : link.stats_rev;
    stats.bytes_carried += bytes;
    stats.flows_carried += 1;
  }

  const SimDuration setup = options.handshake ? round_trip : 0;
  if (bytes == 0) {
    sim_.after(setup + delivery, [id, started, cb = std::move(flow.on_done), this] {
      cb(TransferResult{id, started, sim_.now(), 0, false});
    });
    return id;
  }

  // Admit the flow into the fair-share machinery after connection setup.
  sim_.after(setup, [this, id, flow = std::move(flow)]() mutable {
    flow.last_update = sim_.now();
    auto [it, inserted] = flows_.emplace(id, std::move(flow));
    attach_flow(it->second);
    request_reallocate();
  });
  return id;
}

std::size_t Network::cancel_node_flows(NodeId node) {
  std::vector<FlowId> doomed;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == node || flow.dst == node) doomed.push_back(id);
  }
  for (const FlowId id : doomed) cancel(id);
  return doomed.size();
}

bool Network::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  TransferResult result{id, it->second.started, sim_.now(), it->second.bytes, true};
  auto cb = std::move(it->second.on_done);
  if (it->second.completion_scheduled) sim_.cancel(it->second.completion_event);
  detach_flow(it->second);
  flows_.erase(it);
  request_reallocate();
  if (cb) cb(result);
  return true;
}

double Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

const LinkStats& Network::link_stats(LinkId link, bool forward) const {
  const Link& l = links_.at(link);
  return forward ? l.stats_fwd : l.stats_rev;
}

void Network::attach_flow(Flow& flow) {
  for (const DirLink dl : flow.path) {
    auto& members = link_members_[dl];
    // Member lists stay sorted by FlowId so weight sums accumulate in the
    // same order as iterating flows_. New flows carry the largest id so far,
    // so this is almost always a push_back.
    if (members.empty() || members.back()->id < flow.id) {
      members.push_back(&flow);
    } else {
      const auto pos = std::lower_bound(
          members.begin(), members.end(), flow.id,
          [](const Flow* f, FlowId id) { return f->id < id; });
      members.insert(pos, &flow);
    }
    mark_link_changed(dl);
  }
}

void Network::detach_flow(const Flow& flow) {
  for (const DirLink dl : flow.path) {
    auto& members = link_members_[dl];
    const auto pos = std::lower_bound(
        members.begin(), members.end(), flow.id,
        [](const Flow* f, FlowId id) { return f->id < id; });
    members.erase(pos);
    mark_link_changed(dl);
  }
}

void Network::mark_link_changed(DirLink dl) {
  if (!link_changed_[dl]) {
    link_changed_[dl] = 1;
    changed_links_.push_back(dl);
  }
}

void Network::request_reallocate() {
  ++realloc_requests_;
  if (realloc_pending_) return;
  realloc_pending_ = true;
  // The deferred solve's sequence number is above every event already queued
  // for this instant, so it runs after all same-instant arrivals and
  // departures and sees the batch as a whole. No virtual time passes.
  sim_.after(0, [this] {
    realloc_pending_ = false;
    reallocate();
  });
}

void Network::reallocate() {
  const SimTime now = sim_.now();
  ++reallocs_;

  // 1. Integrate progress of ALL flows since the last rate change, touched
  //    or not: integration must break at every solve instant so the
  //    piecewise sums accumulate identically no matter which component a
  //    solve was scoped to.
  for (auto& [id, flow] : flows_) {
    const double dt = to_seconds(now - flow.last_update);
    flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
    flow.last_update = now;
  }

  // 2. Collect the affected component: the closure of flows and links
  //    reachable from the links whose membership or capacity changed.
  //    Flows outside the closure share no link with it, so their rates are
  //    left untouched (not merely recomputed to the same value).
  std::vector<Flow*> affected;
  std::vector<DirLink> affected_links;
  if (full_resolve_) {
    for (auto& [id, flow] : flows_) {
      affected.push_back(&flow);
      flow.wf_affected = true;
      for (const DirLink dl : flow.path) {
        if (!link_visited_[dl]) {
          link_visited_[dl] = 1;
          affected_links.push_back(dl);
        }
      }
    }
  } else {
    std::vector<DirLink> frontier;
    for (const DirLink dl : changed_links_) {
      if (!link_visited_[dl]) {
        link_visited_[dl] = 1;
        frontier.push_back(dl);
      }
    }
    while (!frontier.empty()) {
      const DirLink dl = frontier.back();
      frontier.pop_back();
      affected_links.push_back(dl);
      for (Flow* f : link_members_[dl]) {
        if (f->wf_affected) continue;
        f->wf_affected = true;
        affected.push_back(f);
        for (const DirLink other : f->path) {
          if (!link_visited_[other]) {
            link_visited_[other] = 1;
            frontier.push_back(other);
          }
        }
      }
    }
    std::sort(affected.begin(), affected.end(),
              [](const Flow* a, const Flow* b) { return a->id < b->id; });
    std::sort(affected_links.begin(), affected_links.end());
  }
  for (const DirLink dl : changed_links_) link_changed_[dl] = 0;
  changed_links_.clear();
  realloc_flows_touched_ += affected.size();

  // 3. Weighted max-min fair allocation with per-flow caps over the affected
  //    component: repeatedly fix either cap-limited flows or the flows
  //    crossing the tightest link. Links and flows are visited in ascending
  //    id order so floating-point accumulation is deterministic.
  std::vector<double> residual(affected_links.size());  // bytes/second
  for (std::size_t i = 0; i < affected_links.size(); ++i) {
    const Link& link = links_[affected_links[i] / 2];
    residual[i] = link.up ? link.config.bandwidth_bps / 8.0 : 0.0;
  }
  // residual is indexed per affected link; map DirLink -> index via the
  // visited scratch (reused as an index marker would alias, so use a local).
  std::unordered_map<DirLink, std::size_t> link_index;
  link_index.reserve(affected_links.size());
  for (std::size_t i = 0; i < affected_links.size(); ++i) {
    link_index.emplace(affected_links[i], i);
  }

  std::size_t unassigned = affected.size();
  while (unassigned > 0) {
    // Tightest link share.
    double best_share = std::numeric_limits<double>::infinity();
    DirLink best_link = 0;
    bool have_link = false;
    for (std::size_t i = 0; i < affected_links.size(); ++i) {
      double weight_sum = 0.0;
      for (const Flow* f : link_members_[affected_links[i]]) {
        if (!f->wf_assigned) weight_sum += f->weight;
      }
      if (weight_sum <= 0.0) continue;
      const double share = residual[i] / weight_sum;
      if (share < best_share) {
        best_share = share;
        best_link = affected_links[i];
        have_link = true;
      }
    }
    // Tightest cap among unassigned flows (normalized by weight).
    double best_cap = std::numeric_limits<double>::infinity();
    for (const Flow* f : affected) {
      if (!f->wf_assigned) best_cap = std::min(best_cap, f->rate_cap / f->weight);
    }

    if (!have_link && !std::isfinite(best_cap)) {
      // No constraining links and no caps (cannot happen for inter-node
      // flows, which always traverse a link); give everything a huge rate.
      for (Flow* f : affected) {
        if (!f->wf_assigned) f->rate = kLocalBytesPerSec;
      }
      break;
    }

    if (best_cap <= best_share + kRateEps) {
      // Fix every flow whose cap binds at this level.
      for (Flow* f : affected) {
        if (f->wf_assigned || f->rate_cap / f->weight > best_cap + kRateEps) continue;
        f->rate = f->rate_cap;
        f->wf_assigned = true;
        --unassigned;
        for (const DirLink dl : f->path) {
          double& r = residual[link_index.at(dl)];
          r = std::max(0.0, r - f->rate);
        }
      }
    } else {
      // Fix flows crossing the bottleneck link at their fair share. A
      // per-flow flag replaces the seed's O(flows^2) std::find scan.
      for (Flow* f : link_members_[best_link]) f->wf_on_bottleneck = true;
      for (Flow* f : affected) {
        if (f->wf_assigned || !f->wf_on_bottleneck) continue;
        f->rate = f->weight * best_share;
        f->wf_assigned = true;
        --unassigned;
        for (const DirLink dl : f->path) {
          double& r = residual[link_index.at(dl)];
          r = std::max(0.0, r - f->rate);
        }
      }
      for (Flow* f : link_members_[best_link]) f->wf_on_bottleneck = false;
    }
  }

  // Clear component scratch.
  for (Flow* f : affected) {
    f->wf_affected = false;
    f->wf_assigned = false;
  }
  for (const DirLink dl : affected_links) link_visited_[dl] = 0;

  // 4. Reschedule completion events. Targets are recomputed for EVERY flow
  //    (not just touched ones) with the same arithmetic the seed used, so
  //    completion instants — including their ±1ns cast edges — are
  //    bit-identical to a full re-solve. Each flow owns exactly one live
  //    event; the superseded one is truly erased, not left as a tombstone.
  for (auto& [id, flow] : flows_) {
    if (flow.completion_scheduled) {
      sim_.cancel(flow.completion_event);
      flow.completion_scheduled = false;
    }
    SimTime target = 0;
    if (flow.remaining <= kBytesEps) {
      target = now;  // finished exactly at a reallocation boundary
    } else if (flow.rate <= kRateEps) {
      continue;  // starved; rescheduled when a solve revives the flow
    } else {
      const double secs = flow.remaining / flow.rate;
      target = now + static_cast<SimDuration>(secs * 1e9) + 1;
    }
    const FlowId fid = id;
    flow.completion_event = sim_.at(target, [this, fid] {
      auto it = flows_.find(fid);
      if (it == flows_.end()) return;
      it->second.completion_scheduled = false;
      complete_flow(fid);
    });
    flow.completion_scheduled = true;
  }
}

void Network::complete_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow flow = std::move(it->second);
  detach_flow(flow);
  flows_.erase(it);
  if (flow.completion_scheduled) sim_.cancel(flow.completion_event);

  TransferResult result;
  result.id = id;
  result.started = flow.started;
  result.bytes = flow.bytes;
  result.cancelled = false;
  // The final byte still has to propagate to the receiver.
  result.finished = sim_.now() + flow.delivery_latency;
  sim_.after(flow.delivery_latency, [cb = std::move(flow.on_done), result] {
    if (cb) cb(result);
  });
  request_reallocate();
}

}  // namespace lon::sim
