#include "simnet/network.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace lon::sim {

namespace {

constexpr LinkId kNoLink = std::numeric_limits<LinkId>::max();
constexpr SimDuration kUnreachable = std::numeric_limits<SimDuration>::max();
constexpr double kRateEps = 1e-9;
constexpr double kBytesEps = 1e-6;

// Node-local transfers (src == dst) model a memory/loopback copy.
constexpr double kLocalBytesPerSec = 12.5e9;           // ~100 Gb/s
constexpr SimDuration kLocalOverhead = 20 * kMicrosecond;

}  // namespace

Network::Network(Simulator& sim, std::uint64_t jitter_seed)
    : sim_(sim), jitter_rng_(jitter_seed ? jitter_seed : 1), jitter_enabled_(jitter_seed != 0) {}

NodeId Network::add_node(std::string name) {
  nodes_.push_back(std::move(name));
  adjacency_.emplace_back();
  routes_dirty_ = true;
  return static_cast<NodeId>(nodes_.size() - 1);
}

const std::string& Network::node_name(NodeId id) const { return nodes_.at(id); }

LinkId Network::add_link(NodeId a, NodeId b, const LinkConfig& config) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("Network::add_link: unknown node");
  }
  if (a == b) throw std::invalid_argument("Network::add_link: self-loop");
  if (config.bandwidth_bps <= 0.0) {
    throw std::invalid_argument("Network::add_link: non-positive bandwidth");
  }
  if (config.latency < 0) {
    throw std::invalid_argument("Network::add_link: negative latency");
  }
  Link link;
  link.a = a;
  link.b = b;
  link.config = config;
  links_.push_back(link);
  const auto id = static_cast<LinkId>(links_.size() - 1);
  adjacency_[a].emplace_back(b, id);
  adjacency_[b].emplace_back(a, id);
  routes_dirty_ = true;
  return id;
}

void Network::set_link_up(LinkId id, bool up) {
  Link& link = links_.at(id);
  if (link.up == up) return;
  link.up = up;
  routes_dirty_ = true;
  // Flows already routed across the link stall (or resume) immediately:
  // reallocate() prices a down link at zero capacity.
  reallocate();
}

std::optional<LinkId> Network::link_between(NodeId a, NodeId b) const {
  if (a >= nodes_.size()) return std::nullopt;
  for (const auto& [neighbor, link] : adjacency_[a]) {
    if (neighbor == b) return link;
  }
  return std::nullopt;
}

void Network::recompute_routes() {
  const std::size_t n = nodes_.size();
  next_hop_.assign(n, std::vector<LinkId>(n, kNoLink));
  latency_table_.assign(n, std::vector<SimDuration>(n, kUnreachable));

  // Dijkstra from every source over propagation latency.
  for (NodeId src = 0; src < n; ++src) {
    std::vector<SimDuration> dist(n, kUnreachable);
    std::vector<LinkId> first_link(n, kNoLink);
    using Item = std::pair<SimDuration, NodeId>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[src] = 0;
    pq.emplace(0, src);
    while (!pq.empty()) {
      auto [d, u] = pq.top();
      pq.pop();
      if (d > dist[u]) continue;
      for (auto [v, link] : adjacency_[u]) {
        if (!links_[link].up) continue;
        const SimDuration nd = d + links_[link].config.latency;
        if (nd < dist[v]) {
          dist[v] = nd;
          first_link[v] = (u == src) ? link : first_link[u];
          pq.emplace(nd, v);
        }
      }
    }
    for (NodeId dst = 0; dst < n; ++dst) {
      latency_table_[src][dst] = dist[dst];
      next_hop_[src][dst] = first_link[dst];
    }
    // next_hop_[src][dst] holds the first link out of src toward dst; rebuild
    // hop-by-hop next hops by walking predecessors is unnecessary because we
    // recompute the full path from each intermediate node's own table.
  }
  routes_dirty_ = false;
}

SimDuration Network::path_latency(NodeId a, NodeId b) const {
  if (routes_dirty_) const_cast<Network*>(this)->recompute_routes();
  if (a == b) return 0;
  const SimDuration d = latency_table_.at(a).at(b);
  if (d == kUnreachable) throw std::runtime_error("Network: nodes not connected");
  return d;
}

SimDuration Network::rtt(NodeId a, NodeId b) const { return 2 * path_latency(a, b); }

bool Network::reachable(NodeId a, NodeId b) const {
  if (routes_dirty_) const_cast<Network*>(this)->recompute_routes();
  if (a >= nodes_.size() || b >= nodes_.size()) return false;
  return a == b || latency_table_[a][b] != kUnreachable;
}

std::vector<Network::DirLink> Network::route(NodeId src, NodeId dst) const {
  std::vector<DirLink> path;
  NodeId cur = src;
  while (cur != dst) {
    const LinkId link = next_hop_[cur][dst];
    if (link == kNoLink) throw std::runtime_error("Network: nodes not connected");
    const bool forward = links_[link].a == cur;
    path.push_back(dir_link(link, forward));
    cur = forward ? links_[link].b : links_[link].a;
  }
  return path;
}

FlowId Network::start_transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                               const TransferOptions& options, TransferCallback on_done) {
  if (src >= nodes_.size() || dst >= nodes_.size()) {
    throw std::out_of_range("Network::start_transfer: unknown node");
  }
  if (options.weight <= 0.0 || options.streams < 1 || options.window_bytes == 0) {
    throw std::invalid_argument("Network::start_transfer: bad options");
  }
  if (routes_dirty_) recompute_routes();

  const FlowId id = next_flow_id_++;
  const SimTime started = sim_.now();

  // Node-local copies bypass the flow machinery entirely.
  if (src == dst) {
    const auto copy_time =
        static_cast<SimDuration>(static_cast<double>(bytes) / kLocalBytesPerSec * 1e9);
    sim_.after(kLocalOverhead + copy_time, [id, started, bytes, cb = std::move(on_done),
                                            this] {
      cb(TransferResult{id, started, sim_.now(), bytes, false});
    });
    return id;
  }

  const SimDuration nominal_latency = path_latency(src, dst);
  const SimDuration round_trip = 2 * nominal_latency;

  // Per-flow TCP throughput ceiling: streams * window / RTT.
  double cap = std::numeric_limits<double>::infinity();
  if (round_trip > 0) {
    cap = static_cast<double>(options.streams) *
          static_cast<double>(options.window_bytes) / to_seconds(round_trip);
  }

  // Latency jitter is sampled once per flow (per-path) from the seeded RNG.
  SimDuration delivery = nominal_latency;
  if (jitter_enabled_) {
    double factor = 1.0;
    for (const DirLink dl : route(src, dst)) {
      const Link& link = links_[dl / 2];
      if (link.config.jitter_frac > 0.0) {
        factor += link.config.jitter_frac * std::abs(jitter_rng_.normal());
      }
    }
    delivery = static_cast<SimDuration>(static_cast<double>(nominal_latency) * factor);
  }

  Flow flow;
  flow.id = id;
  flow.src = src;
  flow.dst = dst;
  flow.path = route(src, dst);
  flow.remaining = static_cast<double>(bytes);
  flow.bytes = bytes;
  flow.weight = options.weight;
  flow.rate_cap = cap;
  flow.started = started;
  flow.delivery_latency = delivery;
  flow.on_done = std::move(on_done);

  for (const DirLink dl : flow.path) {
    Link& link = links_[dl / 2];
    LinkStats& stats = (dl % 2 == 0) ? link.stats_fwd : link.stats_rev;
    stats.bytes_carried += bytes;
    stats.flows_carried += 1;
  }

  const SimDuration setup = options.handshake ? round_trip : 0;
  if (bytes == 0) {
    sim_.after(setup + delivery, [id, started, cb = std::move(flow.on_done), this] {
      cb(TransferResult{id, started, sim_.now(), 0, false});
    });
    return id;
  }

  // Admit the flow into the fair-share machinery after connection setup.
  sim_.after(setup, [this, id, flow = std::move(flow)]() mutable {
    flow.last_update = sim_.now();
    flows_.emplace(id, std::move(flow));
    reallocate();
  });
  return id;
}

std::size_t Network::cancel_node_flows(NodeId node) {
  std::vector<FlowId> doomed;
  for (const auto& [id, flow] : flows_) {
    if (flow.src == node || flow.dst == node) doomed.push_back(id);
  }
  for (const FlowId id : doomed) cancel(id);
  return doomed.size();
}

bool Network::cancel(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  TransferResult result{id, it->second.started, sim_.now(), it->second.bytes, true};
  auto cb = std::move(it->second.on_done);
  flows_.erase(it);
  reallocate();
  if (cb) cb(result);
  return true;
}

double Network::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

const LinkStats& Network::link_stats(LinkId link, bool forward) const {
  const Link& l = links_.at(link);
  return forward ? l.stats_fwd : l.stats_rev;
}

void Network::reallocate() {
  const SimTime now = sim_.now();

  // 1. Integrate progress since the last rate change.
  for (auto& [id, flow] : flows_) {
    const double dt = to_seconds(now - flow.last_update);
    flow.remaining = std::max(0.0, flow.remaining - flow.rate * dt);
    flow.last_update = now;
  }

  // 2. Weighted max-min fair allocation with per-flow caps: repeatedly fix
  //    either cap-limited flows or the flows crossing the tightest link.
  std::unordered_map<DirLink, double> residual;  // bytes/second
  std::unordered_map<DirLink, std::vector<Flow*>> link_flows;
  std::vector<Flow*> unassigned;
  for (auto& [id, flow] : flows_) {
    unassigned.push_back(&flow);
    for (const DirLink dl : flow.path) {
      if (!residual.contains(dl)) {
        const Link& link = links_[dl / 2];
        residual[dl] = link.up ? link.config.bandwidth_bps / 8.0 : 0.0;
      }
      link_flows[dl].push_back(&flow);
    }
  }
  std::unordered_map<FlowId, bool> assigned;

  while (!unassigned.empty()) {
    // Tightest link share.
    double best_share = std::numeric_limits<double>::infinity();
    DirLink best_link = 0;
    bool have_link = false;
    for (const auto& [dl, flows_on_link] : link_flows) {
      double weight_sum = 0.0;
      for (const Flow* f : flows_on_link) {
        if (!assigned[f->id]) weight_sum += f->weight;
      }
      if (weight_sum <= 0.0) continue;
      const double share = residual[dl] / weight_sum;
      if (share < best_share) {
        best_share = share;
        best_link = dl;
        have_link = true;
      }
    }
    // Tightest cap among unassigned flows (normalized by weight).
    double best_cap = std::numeric_limits<double>::infinity();
    for (const Flow* f : unassigned) {
      best_cap = std::min(best_cap, f->rate_cap / f->weight);
    }

    if (!have_link && !std::isfinite(best_cap)) {
      // No constraining links and no caps (cannot happen for inter-node
      // flows, which always traverse a link); give everything a huge rate.
      for (Flow* f : unassigned) f->rate = kLocalBytesPerSec;
      break;
    }

    if (best_cap <= best_share + kRateEps) {
      // Fix every flow whose cap binds at this level.
      std::vector<Flow*> still;
      for (Flow* f : unassigned) {
        if (f->rate_cap / f->weight <= best_cap + kRateEps) {
          f->rate = f->rate_cap;
          assigned[f->id] = true;
          for (const DirLink dl : f->path) {
            residual[dl] = std::max(0.0, residual[dl] - f->rate);
          }
        } else {
          still.push_back(f);
        }
      }
      unassigned = std::move(still);
    } else {
      // Fix flows crossing the bottleneck link at their fair share.
      std::vector<Flow*> still;
      const auto& bottleneck_flows = link_flows[best_link];
      for (Flow* f : unassigned) {
        const bool on_link =
            std::find(bottleneck_flows.begin(), bottleneck_flows.end(), f) !=
            bottleneck_flows.end();
        if (on_link) {
          f->rate = f->weight * best_share;
          assigned[f->id] = true;
          for (const DirLink dl : f->path) {
            residual[dl] = std::max(0.0, residual[dl] - f->rate);
          }
        } else {
          still.push_back(f);
        }
      }
      unassigned = std::move(still);
    }
  }

  // 3. Schedule fresh completion events under the new rates.
  for (auto& [id, flow] : flows_) {
    flow.epoch += 1;
    if (flow.remaining <= kBytesEps) {
      // Finished exactly at a reallocation boundary.
      const FlowId fid = id;
      sim_.after(0, [this, fid, epoch = flow.epoch] {
        auto it = flows_.find(fid);
        if (it != flows_.end() && it->second.epoch == epoch) complete_flow(fid);
      });
      continue;
    }
    if (flow.rate <= kRateEps) continue;  // starved; will be rescheduled later
    const double secs = flow.remaining / flow.rate;
    const auto delay = static_cast<SimDuration>(secs * 1e9) + 1;
    const FlowId fid = id;
    sim_.after(delay, [this, fid, epoch = flow.epoch] {
      auto it = flows_.find(fid);
      if (it != flows_.end() && it->second.epoch == epoch) complete_flow(fid);
    });
  }
}

void Network::complete_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  Flow flow = std::move(it->second);
  flows_.erase(it);

  TransferResult result;
  result.id = id;
  result.started = flow.started;
  result.bytes = flow.bytes;
  result.cancelled = false;
  // The final byte still has to propagate to the receiver.
  result.finished = sim_.now() + flow.delivery_latency;
  sim_.after(flow.delivery_latency, [cb = std::move(flow.on_done), result] {
    if (cb) cb(result);
  });
  reallocate();
}

}  // namespace lon::sim
