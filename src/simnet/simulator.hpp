// Deterministic discrete-event simulator core.
//
// A single virtual clock and a time-ordered event queue. Events scheduled
// for the same instant execute in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every run exactly
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace lon::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules fn at absolute virtual time `when` (must be >= now()).
  void at(SimTime when, EventFn fn);

  /// Schedules fn `delay` after now().
  void after(SimDuration delay, EventFn fn);

  /// Executes the next event, advancing the clock. Returns false if the
  /// queue was empty.
  bool step();

  /// Runs until the event queue drains. Returns the number of events run.
  std::size_t run();

  /// Runs events with time <= deadline, then advances the clock to deadline
  /// (even if idle). Returns the number of events run.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;

    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
};

}  // namespace lon::sim
