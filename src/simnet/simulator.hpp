// Deterministic discrete-event simulator core.
//
// A single virtual clock and a time-ordered event queue. Events scheduled
// for the same instant execute in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every run exactly
// reproducible.
//
// Two interchangeable schedulers sit behind the same API:
//
//  * kCalendar (default) — a calendar queue (Brown, CACM 1988; the scheduler
//    ns-style network simulators use): events hash by time into the "days"
//    of a circular "year", so insert and pop-min are O(1) amortized at any
//    queue size. The bucket count and day width adapt to the observed event
//    density, and cancel() erases the event in place — a cancelled
//    closure's captures are released immediately instead of lingering as a
//    tombstone until the queue drains past it.
//  * kHeap — the reference binary-heap scheduler (the seed implementation),
//    kept for differential testing; cancellation is lazy (tombstoned), but
//    the tombstone is reclaimed when the entry surfaces, so accounting
//    stays exact.
//  * kCrossCheck — the calendar queue as primary with a (time, seq) heap
//    mirror; every pop is verified against the mirror and any divergence
//    throws std::logic_error. Tests run whole experiments in this mode to
//    prove the two schedulers are order-equivalent.
//
// All three execute the exact same (time, seq) order by construction, so
// virtual-time results are bit-identical across scheduler kinds.
//
// Exact accounting: pending()/idle() are backed by a live-event index, so
// cancelling an id that already ran (or was never issued) returns false and
// perturbs nothing — the seed implementation leaked such ids into its
// tombstone set forever and let pending() underflow.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace lon::sim {

using EventFn = std::function<void()>;

/// Handle returned by at()/after(); pass to cancel() to disarm the event.
using TimerId = std::uint64_t;

/// Which event-queue implementation a Simulator runs on (see file comment).
enum class SchedulerKind {
  kCalendar,    ///< calendar queue, O(1) amortized (the default)
  kHeap,        ///< reference binary heap (the seed implementation)
  kCrossCheck,  ///< calendar + heap mirror; divergence throws
};

class Simulator {
 public:
  explicit Simulator(SchedulerKind kind = SchedulerKind::kCalendar);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules fn at absolute virtual time `when` (must be >= now()).
  TimerId at(SimTime when, EventFn fn);

  /// Schedules fn `delay` after now().
  TimerId after(SimDuration delay, EventFn fn);

  /// Disarms a pending event. A cancelled event neither runs nor advances
  /// the clock (timeout guards must not drag virtual time forward when the
  /// guarded operation completes first). Returns false if the event already
  /// ran or was cancelled — such ids leave no trace behind.
  bool cancel(TimerId id);

  /// Executes the next event, advancing the clock. Returns false if the
  /// queue was empty.
  bool step();

  /// Runs until the event queue drains. Returns the number of events run.
  std::size_t run();

  /// Runs events with time <= deadline, then advances the clock to deadline
  /// (even if idle). Returns the number of events run.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] bool idle() const { return live_.empty(); }
  [[nodiscard]] std::size_t pending() const { return live_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }
  [[nodiscard]] std::uint64_t scheduled() const { return next_seq_; }
  [[nodiscard]] std::uint64_t cancelled() const { return cancelled_count_; }
  [[nodiscard]] SchedulerKind scheduler() const { return kind_; }

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    EventFn fn;
  };

  /// One calendar "day": events whose day index hashes here, kept sorted
  /// ascending by (time, seq). Pops advance `head` instead of erasing, so
  /// the hot path never shifts elements; the vector compacts as it drains.
  struct Bucket {
    std::vector<Event> events;
    std::size_t head = 0;

    [[nodiscard]] bool empty() const { return head == events.size(); }
    [[nodiscard]] const Event& front() const { return events[head]; }
  };

  struct HeapEntry {
    SimTime time = 0;
    std::uint64_t seq = 0;
    EventFn fn;

    bool operator>(const HeapEntry& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  // --- Calendar queue ------------------------------------------------------
  [[nodiscard]] std::size_t bucket_of(SimTime t) const {
    return static_cast<std::size_t>(t / width_) & (buckets_.size() - 1);
  }
  void cal_insert(Event ev);
  void cal_insert_sorted(Bucket& bucket, Event ev);
  /// Locates the earliest (time, seq) event; nullptr when empty.
  const Event* cal_peek();
  Event cal_pop();
  void cal_erase(TimerId id, SimTime time);
  /// Rebuilds the calendar with `nbuckets` days, re-deriving the day width
  /// from the spacing of the earliest pending events.
  void cal_resize(std::size_t nbuckets);

  // --- Heap (reference scheduler / cross-check mirror) ---------------------
  void heap_drop_tombstones();
  [[nodiscard]] bool use_calendar() const { return kind_ != SchedulerKind::kHeap; }
  [[nodiscard]] bool use_heap() const { return kind_ != SchedulerKind::kCalendar; }

  /// Time of the earliest pending event; nullptr when idle.
  const SimTime* next_event_time();

  SchedulerKind kind_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_count_ = 0;

  /// Every queued event id -> its scheduled time. Exact pending accounting
  /// plus the O(1) id->bucket lookup true deletion needs.
  std::unordered_map<TimerId, SimTime> live_;

  std::vector<Bucket> buckets_;
  SimDuration width_ = kMillisecond;  ///< day width, adapted on resize
  std::size_t cal_size_ = 0;
  std::size_t cur_bucket_ = 0;  ///< the day the dequeue cursor is on
  SimTime bucket_top_ = 0;      ///< exclusive upper time edge of that day

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> heap_;
  std::unordered_set<TimerId> heap_tombstones_;  ///< lazily-deleted heap ids
};

}  // namespace lon::sim
