// Deterministic discrete-event simulator core.
//
// A single virtual clock and a time-ordered event queue. Events scheduled
// for the same instant execute in scheduling order (a monotonically
// increasing sequence number breaks ties), which makes every run exactly
// reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.hpp"

namespace lon::sim {

using EventFn = std::function<void()>;

/// Handle returned by at()/after(); pass to cancel() to disarm the event.
using TimerId = std::uint64_t;

class Simulator {
 public:
  Simulator() = default;

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules fn at absolute virtual time `when` (must be >= now()).
  TimerId at(SimTime when, EventFn fn);

  /// Schedules fn `delay` after now().
  TimerId after(SimDuration delay, EventFn fn);

  /// Disarms a pending event. A cancelled event neither runs nor advances
  /// the clock (timeout guards must not drag virtual time forward when the
  /// guarded operation completes first). Returns false if the event already
  /// ran or was cancelled.
  bool cancel(TimerId id);

  /// Executes the next event, advancing the clock. Returns false if the
  /// queue was empty.
  bool step();

  /// Runs until the event queue drains. Returns the number of events run.
  std::size_t run();

  /// Runs events with time <= deadline, then advances the clock to deadline
  /// (even if idle). Returns the number of events run.
  std::size_t run_until(SimTime deadline);

  [[nodiscard]] bool idle() const { return queue_.size() == cancelled_.size(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size() - cancelled_.size(); }
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    EventFn fn;

    bool operator>(const Event& o) const {
      return time != o.time ? time > o.time : seq > o.seq;
    }
  };

  /// Pops cancelled events off the front of the queue without running them
  /// or touching the clock.
  void drop_cancelled_head();

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_set<TimerId> cancelled_;  ///< disarmed but still queued
};

}  // namespace lon::sim
