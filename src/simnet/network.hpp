// Flow-level network model on top of the discrete-event simulator.
//
// Nodes are connected by full-duplex point-to-point links with a propagation
// latency and a capacity. A bulk transfer is a *flow*: it follows the
// lowest-latency route between two nodes, and all flows crossing a link
// share its capacity under weighted max-min fairness (the fluid approximation
// of competing TCP streams). In addition, each flow is individually capped at
// streams * window / RTT — the classic TCP window limit. This cap is what
// made single-socket wide-area transfers slow in 2003 and what the LoRS
// multi-threaded download algorithms (Plank et al., CS-02-485) overcome by
// opening parallel streams; modelling it lets the reproduction show the same
// effect.
//
// Whenever a flow starts or finishes, every flow's progress is integrated up
// to the current instant and rates are recomputed, so the model is exact for
// piecewise-constant rate allocations.
//
// The re-solve is incremental: arrivals and departures mark the directed
// links whose membership changed, same-instant changes coalesce into one
// deferred solve, and the waterfill runs only over the closure of flows and
// links reachable from the marked links (flows in untouched components keep
// their previous rates — bit-for-bit, since they are not even recomputed).
// Each flow carries exactly one live completion event that is rescheduled as
// its rate changes, so a reallocation storm cannot pile dead closures into
// the event queue. See DESIGN.md §15 for the determinism argument.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace lon::sim {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

struct LinkConfig {
  double bandwidth_bps = 1e9;     ///< capacity per direction (bits/second)
  SimDuration latency = kMillisecond;  ///< one-way propagation delay
  double jitter_frac = 0.0;       ///< stddev of per-flow latency noise, as a
                                  ///< fraction of latency (deterministic seed)
};

/// Per-link transfer statistics (per direction).
struct LinkStats {
  std::uint64_t bytes_carried = 0;
  std::uint64_t flows_carried = 0;
};

struct TransferOptions {
  double weight = 1.0;        ///< max-min fairness weight (priority)
  int streams = 1;            ///< parallel TCP streams (LoRS threads)
  std::uint64_t window_bytes = 64 * 1024;  ///< per-stream TCP window
  bool handshake = true;      ///< pay one RTT of connection setup
};

/// Outcome handed to a transfer's completion callback.
struct TransferResult {
  FlowId id = 0;
  SimTime started = 0;
  SimTime finished = 0;   ///< instant the last byte arrives at the receiver
  std::uint64_t bytes = 0;
  bool cancelled = false;

  [[nodiscard]] SimDuration elapsed() const { return finished - started; }
};

using TransferCallback = std::function<void(const TransferResult&)>;

class Network {
 public:
  /// The RNG seed drives latency jitter only; 0 disables jitter entirely
  /// regardless of per-link jitter_frac.
  explicit Network(Simulator& sim, std::uint64_t jitter_seed = 0);

  // --- Topology -----------------------------------------------------------

  NodeId add_node(std::string name);
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Adds a full-duplex link between a and b. Returns the link id (shared by
  /// both directions; stats are tracked per direction).
  LinkId add_link(NodeId a, NodeId b, const LinkConfig& config);

  /// Takes a link down (or brings it back). A down link carries no traffic:
  /// routes are recomputed around it, and flows already crossing it stall at
  /// rate zero — bytes "in the network" do NOT keep arriving, which is what
  /// makes a network partition observable only through timeouts. Flows
  /// resume from where they stalled when the link returns.
  void set_link_up(LinkId id, bool up);
  [[nodiscard]] bool link_up(LinkId id) const { return links_.at(id).up; }

  /// The link connecting a and b directly, if any.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  /// Recomputes all-pairs routes. Called lazily on first use after a
  /// topology change; exposed for tests. Route tables are derived state, so
  /// the rebuild is const (the Network is simulator-thread-confined).
  void recompute_routes() const;

  /// One-way propagation latency along the route from a to b (no jitter).
  [[nodiscard]] SimDuration path_latency(NodeId a, NodeId b) const;

  /// Round-trip propagation latency between a and b.
  [[nodiscard]] SimDuration rtt(NodeId a, NodeId b) const;

  /// True if a route exists between the two nodes.
  [[nodiscard]] bool reachable(NodeId a, NodeId b) const;

  // --- Transfers ----------------------------------------------------------

  /// Starts a bulk transfer of `bytes` from src to dst. The callback fires
  /// (in virtual time) when the final byte arrives, or on cancel.
  /// Zero-byte transfers complete after one latency (plus handshake).
  FlowId start_transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                        const TransferOptions& options, TransferCallback on_done);

  /// Cancels an in-flight transfer; its callback fires with cancelled=true.
  /// Returns false if the flow already completed.
  bool cancel(FlowId id);

  /// Cancels every in-flight flow with `node` as an endpoint (a crashed host
  /// neither sends nor receives). Each cancelled flow's callback fires with
  /// cancelled=true. Returns the number of flows killed.
  std::size_t cancel_node_flows(NodeId node);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Instantaneous allocated rate of a flow in bytes/second (0 if finished).
  [[nodiscard]] double flow_rate(FlowId id) const;

  [[nodiscard]] const LinkStats& link_stats(LinkId link, bool forward) const;

  [[nodiscard]] Simulator& simulator() { return sim_; }

  // --- Reallocation instrumentation ---------------------------------------

  /// Number of max-min solves actually executed.
  [[nodiscard]] std::uint64_t reallocs() const { return reallocs_; }
  /// Number of solve requests (same-instant requests coalesce into one solve).
  [[nodiscard]] std::uint64_t realloc_requests() const { return realloc_requests_; }
  /// Total flows whose rate was recomputed, summed over all solves.
  [[nodiscard]] std::uint64_t realloc_flows_touched() const {
    return realloc_flows_touched_;
  }

  /// Debug switch: treat every solve as a full-graph solve instead of the
  /// affected-component solve. Differential tests compare the two modes.
  void set_full_resolve(bool on) { full_resolve_ = on; }
  [[nodiscard]] bool full_resolve() const { return full_resolve_; }

 private:
  struct Link {
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    LinkConfig config;
    bool up = true;
    LinkStats stats_fwd;  // a -> b
    LinkStats stats_rev;  // b -> a
  };

  // A directed link is (link index, forward?) encoded as 2*index + dir.
  using DirLink = std::uint32_t;
  static DirLink dir_link(LinkId id, bool forward) { return 2 * id + (forward ? 0 : 1); }

  struct Flow {
    FlowId id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::vector<DirLink> path;
    double remaining = 0.0;      // bytes still to transmit
    std::uint64_t bytes = 0;
    double rate = 0.0;           // bytes/second, current allocation
    double weight = 1.0;
    double rate_cap = 0.0;       // streams * window / rtt, bytes/second
    SimTime last_update = 0;
    SimTime started = 0;
    SimDuration delivery_latency = 0;  // one-way latency incl. jitter
    TimerId completion_event = 0;      // the flow's single live completion timer
    bool completion_scheduled = false;
    // Scratch flags for the waterfill (valid only inside reallocate()).
    bool wf_affected = false;
    bool wf_assigned = false;
    bool wf_on_bottleneck = false;
    TransferCallback on_done;
  };

  /// Integrates progress of all flows up to now, recomputes the weighted
  /// max-min allocation over the affected component, and reschedules
  /// completion events.
  void reallocate();

  /// Coalesces solve requests: the first request at an instant schedules one
  /// deferred solve that runs after every already-queued same-instant event.
  void request_reallocate();

  /// Registers the flow on its links' member lists and marks them changed.
  void attach_flow(Flow& flow);
  void detach_flow(const Flow& flow);
  void mark_link_changed(DirLink dl);

  void complete_flow(FlowId id);
  [[nodiscard]] std::vector<DirLink> route(NodeId src, NodeId dst) const;

  Simulator& sim_;
  Rng jitter_rng_;
  bool jitter_enabled_ = false;

  std::vector<std::string> nodes_;
  std::vector<Link> links_;
  // adjacency: node -> list of (neighbor, link id)
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adjacency_;

  // Route tables are derived from the topology and rebuilt lazily on first
  // use after a change; mutable so const queries can trigger the rebuild.
  // next_hop_[src][dst] = link id to take, or kNoLink.
  mutable std::vector<std::vector<LinkId>> next_hop_;
  mutable std::vector<std::vector<SimDuration>> latency_table_;
  mutable bool routes_dirty_ = true;

  std::map<FlowId, Flow> flows_;  // node-stable; iterates in FlowId order
  FlowId next_flow_id_ = 1;

  // Per-directed-link member lists, each sorted by FlowId — the waterfill's
  // accumulation order must match iterating flows_ in id order.
  std::vector<std::vector<Flow*>> link_members_;
  std::vector<DirLink> changed_links_;   // membership/capacity changes since
  std::vector<char> link_changed_;       // the last solve (flag per DirLink)
  std::vector<char> link_visited_;       // closure scratch
  bool realloc_pending_ = false;
  bool full_resolve_ = false;

  std::uint64_t reallocs_ = 0;
  std::uint64_t realloc_requests_ = 0;
  std::uint64_t realloc_flows_touched_ = 0;
};

}  // namespace lon::sim
