// Flow-level network model on top of the discrete-event simulator.
//
// Nodes are connected by full-duplex point-to-point links with a propagation
// latency and a capacity. A bulk transfer is a *flow*: it follows the
// lowest-latency route between two nodes, and all flows crossing a link
// share its capacity under weighted max-min fairness (the fluid approximation
// of competing TCP streams). In addition, each flow is individually capped at
// streams * window / RTT — the classic TCP window limit. This cap is what
// made single-socket wide-area transfers slow in 2003 and what the LoRS
// multi-threaded download algorithms (Plank et al., CS-02-485) overcome by
// opening parallel streams; modelling it lets the reproduction show the same
// effect.
//
// Whenever a flow starts or finishes, every affected flow's progress is
// integrated up to the current instant and rates are recomputed, so the
// model is exact for piecewise-constant rate allocations.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "simnet/simulator.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace lon::sim {

using NodeId = std::uint32_t;
using LinkId = std::uint32_t;
using FlowId = std::uint64_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();

struct LinkConfig {
  double bandwidth_bps = 1e9;     ///< capacity per direction (bits/second)
  SimDuration latency = kMillisecond;  ///< one-way propagation delay
  double jitter_frac = 0.0;       ///< stddev of per-flow latency noise, as a
                                  ///< fraction of latency (deterministic seed)
};

/// Per-link transfer statistics (per direction).
struct LinkStats {
  std::uint64_t bytes_carried = 0;
  std::uint64_t flows_carried = 0;
};

struct TransferOptions {
  double weight = 1.0;        ///< max-min fairness weight (priority)
  int streams = 1;            ///< parallel TCP streams (LoRS threads)
  std::uint64_t window_bytes = 64 * 1024;  ///< per-stream TCP window
  bool handshake = true;      ///< pay one RTT of connection setup
};

/// Outcome handed to a transfer's completion callback.
struct TransferResult {
  FlowId id = 0;
  SimTime started = 0;
  SimTime finished = 0;   ///< instant the last byte arrives at the receiver
  std::uint64_t bytes = 0;
  bool cancelled = false;

  [[nodiscard]] SimDuration elapsed() const { return finished - started; }
};

using TransferCallback = std::function<void(const TransferResult&)>;

class Network {
 public:
  /// The RNG seed drives latency jitter only; 0 disables jitter entirely
  /// regardless of per-link jitter_frac.
  explicit Network(Simulator& sim, std::uint64_t jitter_seed = 0);

  // --- Topology -----------------------------------------------------------

  NodeId add_node(std::string name);
  [[nodiscard]] const std::string& node_name(NodeId id) const;
  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }

  /// Adds a full-duplex link between a and b. Returns the link id (shared by
  /// both directions; stats are tracked per direction).
  LinkId add_link(NodeId a, NodeId b, const LinkConfig& config);

  /// Takes a link down (or brings it back). A down link carries no traffic:
  /// routes are recomputed around it, and flows already crossing it stall at
  /// rate zero — bytes "in the network" do NOT keep arriving, which is what
  /// makes a network partition observable only through timeouts. Flows
  /// resume from where they stalled when the link returns.
  void set_link_up(LinkId id, bool up);
  [[nodiscard]] bool link_up(LinkId id) const { return links_.at(id).up; }

  /// The link connecting a and b directly, if any.
  [[nodiscard]] std::optional<LinkId> link_between(NodeId a, NodeId b) const;

  /// Recomputes all-pairs routes. Called lazily on first transfer after a
  /// topology change; exposed for tests.
  void recompute_routes();

  /// One-way propagation latency along the route from a to b (no jitter).
  [[nodiscard]] SimDuration path_latency(NodeId a, NodeId b) const;

  /// Round-trip propagation latency between a and b.
  [[nodiscard]] SimDuration rtt(NodeId a, NodeId b) const;

  /// True if a route exists between the two nodes.
  [[nodiscard]] bool reachable(NodeId a, NodeId b) const;

  // --- Transfers ----------------------------------------------------------

  /// Starts a bulk transfer of `bytes` from src to dst. The callback fires
  /// (in virtual time) when the final byte arrives, or on cancel.
  /// Zero-byte transfers complete after one latency (plus handshake).
  FlowId start_transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                        const TransferOptions& options, TransferCallback on_done);

  /// Cancels an in-flight transfer; its callback fires with cancelled=true.
  /// Returns false if the flow already completed.
  bool cancel(FlowId id);

  /// Cancels every in-flight flow with `node` as an endpoint (a crashed host
  /// neither sends nor receives). Each cancelled flow's callback fires with
  /// cancelled=true. Returns the number of flows killed.
  std::size_t cancel_node_flows(NodeId node);

  [[nodiscard]] std::size_t active_flows() const { return flows_.size(); }

  /// Instantaneous allocated rate of a flow in bytes/second (0 if finished).
  [[nodiscard]] double flow_rate(FlowId id) const;

  [[nodiscard]] const LinkStats& link_stats(LinkId link, bool forward) const;

  [[nodiscard]] Simulator& simulator() { return sim_; }

 private:
  struct Link {
    NodeId a = kInvalidNode;
    NodeId b = kInvalidNode;
    LinkConfig config;
    bool up = true;
    LinkStats stats_fwd;  // a -> b
    LinkStats stats_rev;  // b -> a
  };

  // A directed link is (link index, forward?) encoded as 2*index + dir.
  using DirLink = std::uint32_t;
  static DirLink dir_link(LinkId id, bool forward) { return 2 * id + (forward ? 0 : 1); }

  struct Flow {
    FlowId id = 0;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::vector<DirLink> path;
    double remaining = 0.0;      // bytes still to transmit
    std::uint64_t bytes = 0;
    double rate = 0.0;           // bytes/second, current allocation
    double weight = 1.0;
    double rate_cap = 0.0;       // streams * window / rtt, bytes/second
    SimTime last_update = 0;
    SimTime started = 0;
    SimDuration delivery_latency = 0;  // one-way latency incl. jitter
    std::uint64_t epoch = 0;     // invalidates stale completion events
    TransferCallback on_done;
  };

  /// Integrates progress of all flows up to now, recomputes the weighted
  /// max-min allocation, and schedules fresh completion events.
  void reallocate();

  void complete_flow(FlowId id);
  [[nodiscard]] std::vector<DirLink> route(NodeId src, NodeId dst) const;

  Simulator& sim_;
  Rng jitter_rng_;
  bool jitter_enabled_ = false;

  std::vector<std::string> nodes_;
  std::vector<Link> links_;
  // adjacency: node -> list of (neighbor, link id)
  std::vector<std::vector<std::pair<NodeId, LinkId>>> adjacency_;

  // next_hop_[src][dst] = link id to take, or kInvalidNode-marker.
  std::vector<std::vector<LinkId>> next_hop_;
  std::vector<std::vector<SimDuration>> latency_table_;
  bool routes_dirty_ = true;

  std::map<FlowId, Flow> flows_;
  FlowId next_flow_id_ = 1;
};

}  // namespace lon::sim
