// Access-trace analysis: the quantities reported in the paper's section 4.3.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "streaming/types.hpp"

namespace lon::session {

struct AccessSummary {
  std::size_t total = 0;
  std::size_t hits = 0;
  std::size_t lan = 0;
  std::size_t wan = 0;

  double hit_rate = 0.0;        ///< hits / total
  double wan_rate = 0.0;        ///< wan / total

  /// "Initial phase": accesses up to and including the last WAN access
  /// ("After that phase, there are no accesses to the WAN"). 0 when the run
  /// never touched the WAN.
  std::size_t initial_phase = 0;
  double wan_rate_initial = 0.0;  ///< WAN accesses / initial-phase accesses
  double hit_rate_initial = 0.0;

  double mean_total_s = 0.0;        ///< mean client-observed latency
  double mean_total_phase2_s = 0.0; ///< same, after the initial phase
  double mean_comm_s = 0.0;         ///< mean agent data-access latency
  double mean_comm_hit_s = 0.0;
  double mean_comm_lan_s = 0.0;
  double mean_comm_wan_s = 0.0;
  double mean_decompress_s = 0.0;
  double max_total_s = 0.0;
};

[[nodiscard]] AccessSummary summarize(const std::vector<streaming::AccessRecord>& records);

/// Prints "n<TAB>seconds" rows — one latency series of figures 9-11.
void print_latency_series(std::ostream& os, const std::string& label,
                          const std::vector<streaming::AccessRecord>& records);

/// Prints "n<TAB>seconds<TAB>class" rows — the communication latency of
/// figure 12 (log-scale in the paper; we print raw seconds).
void print_comm_series(std::ostream& os, const std::string& label,
                       const std::vector<streaming::AccessRecord>& records);

/// One-paragraph summary block (used by the benches).
void print_summary(std::ostream& os, const std::string& label, const AccessSummary& s);

/// Robustness counters gathered from the self-healing layers after a run
/// under fault injection: how often delivery had to fight for its bytes.
struct RobustnessSummary {
  std::uint64_t timeouts = 0;             ///< fabric deadlines that fired
  std::uint64_t requests_lost = 0;        ///< requests eaten by partitions
  std::uint64_t requests_dropped = 0;     ///< requests eaten by fault injection
  std::uint64_t flows_killed = 0;         ///< flows cancelled by depot crashes
  std::uint64_t retries = 0;              ///< extra LoRS download rounds
  std::uint64_t failovers = 0;            ///< replica failovers
  std::uint64_t corruption_detected = 0;  ///< checksum mismatches caught
  std::uint64_t repairs_run = 0;          ///< repair_async invocations
  std::uint64_t replicas_repaired = 0;    ///< replicas re-created
  std::uint64_t replicas_lost = 0;        ///< dead replicas discovered
  std::uint64_t refetches = 0;            ///< agent-level re-resolutions
  std::uint64_t invalidations = 0;        ///< exNodes evicted as stale
  std::uint64_t restaged = 0;             ///< view sets staged again
  std::uint64_t lease_refreshes = 0;      ///< staged leases renewed

  // Overload protection (PR 6): explicit sheds, ladder moves, augmentation.
  std::uint64_t demand_shed = 0;          ///< demand requests refused at the agent
  std::uint64_t shed_queue_full = 0;      ///< ... demand queue at capacity
  std::uint64_t shed_no_tokens = 0;       ///< ... fair-share bucket empty
  std::uint64_t shed_deadline = 0;        ///< ... predicted deadline miss
  std::uint64_t generation_shed = 0;      ///< generation requests the server shed
  std::uint64_t shed_retries = 0;         ///< client retries after a shed
  std::uint64_t downgrades = 0;           ///< degradation-ladder steps down
  std::uint64_t upgrades = 0;             ///< ... and recoveries back up
  std::uint64_t degrade_lan_only = 0;     ///< WAN prefetches skipped (kLanOnly)
  std::uint64_t degrade_lod = 0;          ///< accesses served coarse (kCoarseLod)
  std::uint64_t degrade_demand_only = 0;  ///< prefetch rounds suppressed
  std::uint64_t hot_reports = 0;          ///< demand-pressure reports to the DVS
  std::uint64_t augments = 0;             ///< hot view sets fanned to more depots

  // Continuous LOD streaming (PR 7): coarse serves and refinement progress.
  std::uint64_t lod_coarse_serves = 0;    ///< demand deliveries at a coarse tier
  std::uint64_t lod_refinements = 0;      ///< background full-res upgrades started
  std::uint64_t lod_refined = 0;          ///< upgrades that swapped full-res bytes in

  // Cooperative site cache (PR 10): cross-agent sharing and coalescing.
  std::uint64_t restage_coalesced = 0;    ///< restages joined to another agent's flight
  std::uint64_t site_hits = 0;            ///< demand resolves served via the site index
  std::uint64_t site_adopted = 0;         ///< staging targets adopted from the index
  std::uint64_t stage_wan_bytes = 0;      ///< payload bytes staged over the WAN
  std::uint64_t site_expirations = 0;     ///< site entries dropped on lease expiry
  std::uint64_t site_restage_leaders = 0; ///< single-flight restages led
  std::uint64_t site_restage_keys = 0;    ///< distinct view sets ever restaged
};

/// One-paragraph robustness block (used by the fault benches/tests).
void print_robustness(std::ostream& os, const std::string& label,
                      const RobustnessSummary& s);

/// Assembles the robustness summary from the obs registry the run's
/// components reported into. Sums across instances of each component, so it
/// works for multi-agent topologies too.
[[nodiscard]] RobustnessSummary collect_robustness(const obs::Registry& registry);

}  // namespace lon::session
