#include "session/scenario.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

#include "session/system.hpp"
#include "util/log.hpp"

namespace lon::session {

ScenarioResult run_scenario(const Scenario& scenario) {
  if (scenario.clients.empty()) {
    throw std::invalid_argument("run_scenario: no clients");
  }
  const auto wall_start = std::chrono::steady_clock::now();
  const ExperimentConfig& config = scenario.base;
  const int n_clients = static_cast<int>(scenario.clients.size());
  System sys(config, n_clients);

  std::vector<const CursorScript*> script_ptrs;
  script_ptrs.reserve(scenario.clients.size());
  for (const ScenarioClient& sc : scenario.clients) script_ptrs.push_back(&sc.script);
  sys.publish(config, script_ptrs);

  sys.make_agent(config);
  sys.make_server_agent(config);
  sys.make_clients(config);
  sim::Simulator& sim = sys.sim;

  SimTime script_start = sim.now();
  sys.start_staging();
  if (scenario.warm_site_cache) {
    // Warm half of the cold/warm pair: let prestaging finish — on every
    // co-sited agent — before the first viewer arrives, so the site's LAN
    // replicas (and the shared index) are already in place.
    while (!sys.staging_complete() && sim.step()) {
    }
    script_start = sim.now();
  }

  fault::FaultInjector injector(sim, sys.net, sys.fabric, sys.obs.get());
  sys.arm_faults(injector, config.faults, script_start);
  sys.start_repair(config);

  // One driver per client: each replays its own script, waiting for every
  // view then dwelling, exactly like the single-client loop. Starts follow
  // the per-client offsets so the scripts interleave in virtual time.
  struct Driver {
    std::size_t step = 0;
    std::size_t failed = 0;
  };
  std::vector<Driver> drivers(scenario.clients.size());
  int remaining = n_clients;
  std::vector<std::function<void()>> advance(scenario.clients.size());
  for (int i = 0; i < n_clients; ++i) {
    const auto ci = static_cast<std::size_t>(i);
    advance[ci] = [&, ci] {
      Driver& d = drivers[ci];
      const CursorScript& script = scenario.clients[ci].script;
      if (d.step >= script.size()) {
        --remaining;
        return;
      }
      const CursorStep step = script.steps()[d.step++];
      sys.clients[ci]->set_view(step.direction, [&, ci, step](bool ok) {
        if (!ok) {
          ++drivers[ci].failed;
          LON_LOG(kWarn, "scenario")
              << "client " << ci << " view request failed; continuing";
        }
        sim.after(step.dwell, advance[ci]);
      });
    };
    sim.after(scenario.clients[ci].start, advance[ci]);
  }
  while (remaining > 0 && sim.step()) {
  }
  const SimTime script_end = sim.now();
  if (scenario.drain) {
    // Let tail work — background LOD refinements above all — run to
    // completion so the end-of-run counters balance (refined == started).
    while (sim.step()) {
    }
  }

  ScenarioResult result;
  result.name = scenario.name;
  double latency_sum = 0.0;
  double p99_sum = 0.0;
  result.min_client_delivered = static_cast<std::size_t>(-1);
  for (int i = 0; i < n_clients; ++i) {
    const auto ci = static_cast<std::size_t>(i);
    ScenarioResult::PerClient pc;
    pc.accesses = sys.clients[ci]->accesses();
    pc.summary = summarize(pc.accesses);
    pc.failed_accesses = drivers[ci].failed;
    pc.delivered = pc.accesses.size() - std::min(pc.accesses.size(), pc.failed_accesses);
    // Clients are constructed in index order, so client i owns the registry
    // instance labelled inst=i.
    const std::string labels = "component=client,inst=" + std::to_string(i);
    if (const obs::LatencyHistogram* h =
            sys.obs->metrics.find_histogram("session.total_ns", labels)) {
      pc.p50_total_s = h->p50() / 1e9;
      pc.p99_total_s = h->p99() / 1e9;
    }
    result.total_accesses += pc.accesses.size();
    result.failed_accesses += pc.failed_accesses;
    latency_sum += pc.summary.mean_total_s * static_cast<double>(pc.accesses.size());
    result.p99_worst_s = std::max(result.p99_worst_s, pc.p99_total_s);
    p99_sum += pc.p99_total_s;
    result.min_client_delivered = std::min(result.min_client_delivered, pc.delivered);
    result.clients.push_back(std::move(pc));
  }
  result.mean_total_s = result.total_accesses > 0
                            ? latency_sum / static_cast<double>(result.total_accesses)
                            : 0.0;
  result.p99_mean_s = p99_sum / static_cast<double>(n_clients);
  result.agent_stats = sys.agent_stats();
  result.shed_fraction =
      result.agent_stats.requests > 0
          ? static_cast<double>(result.agent_stats.demand_shed) /
                static_cast<double>(result.agent_stats.requests)
          : 0.0;
  result.robustness = collect_robustness(sys.obs->metrics);
  result.fault_stats = injector.stats();
  result.duration = script_end - script_start;
  result.staging_complete = sys.staging_complete();

  // Simulator-core cost, surfaced both on the result (exact-match gating)
  // and through the obs registry (dashboards, artifact dumps).
  result.sim_events = sim.executed();
  result.sim_scheduled = sim.scheduled();
  result.net_reallocs = sys.net.reallocs();
  result.net_realloc_flows_touched = sys.net.realloc_flows_touched();
  result.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                wall_start)
                      .count();
  obs::Registry& metrics = sys.obs->metrics;
  metrics.counter("sim.events_executed", "component=simnet").inc(result.sim_events);
  metrics.counter("sim.events_scheduled", "component=simnet").inc(result.sim_scheduled);
  metrics.counter("sim.events_cancelled", "component=simnet").inc(sim.cancelled());
  metrics.counter("net.reallocs", "component=simnet").inc(result.net_reallocs);
  metrics.counter("net.realloc_requests", "component=simnet")
      .inc(sys.net.realloc_requests());
  metrics.counter("net.realloc_flows_touched", "component=simnet")
      .inc(result.net_realloc_flows_touched);
  if (result.wall_s > 0.0) {
    metrics.gauge("sim.events_per_sec", "component=simnet")
        .set(static_cast<double>(result.sim_events) / result.wall_s);
  }

  result.obs = std::move(sys.obs);
  return result;
}

namespace {

/// Small lattice every scenario shares: 8x16 = 128 view sets, enough spread
/// for distinct browse paths while publication stays fast.
lightfield::LatticeConfig scenario_lattice() {
  lightfield::LatticeConfig lattice;
  lattice.angular_step_deg = 7.5;
  lattice.view_set_span = 3;
  lattice.view_resolution = 200;
  return lattice;
}

/// Latency-study content policy: transfer/staging shape is faithful,
/// clients skip decode, everything stays deterministic in virtual time.
void filler_content(ExperimentConfig& base) {
  base.all_filler = true;
  base.client.decode = false;
  base.client.timing = streaming::ClientConfig::Timing::kModeled;
}

}  // namespace

Scenario flash_crowd(int clients, bool admission) {
  Scenario s;
  s.name = admission ? "flash_crowd/admission" : "flash_crowd/no_admission";
  s.base.lattice = scenario_lattice();
  s.base.which = Case::kWanStreaming;  // fresh publish: nothing on the LAN yet
  filler_content(s.base);
  s.base.dwell = 250 * kMillisecond;
  // A modest trunk: the whole crowd's initial miss storm is several times
  // what it can move inside the deadline, so the run lives or dies on how
  // the excess is handled.
  s.base.wan_bandwidth_bps = 50e6;
  // A shed costs one backoff round before the retry; give clients enough
  // rounds that nobody starves even at the back of the crowd.
  s.base.client.shed_retry.max_attempts = 8;
  s.base.client.shed_retry.base_backoff = 250 * kMillisecond;
  s.slo_deadline = kSecond;

  if (admission) {
    s.base.admission.enabled = true;
    s.base.admission.max_queue = 4;
    s.base.admission.tokens_per_sec = 2.0;
    s.base.admission.token_burst = 4.0;
    // The queue bound is the protection here: the storm keeps the WAN
    // latency estimate above the deadline for most of the run, so triage
    // would re-shed every retry until clients starve. The ladder (below)
    // handles deadline pressure by shrinking the work instead.
    s.base.admission.deadline_triage = false;
    s.base.interactivity_deadline = s.slo_deadline;
    // The full ladder: LAN-only -> coarse tier -> demand-only, plus hot
    // reporting so the server agent fans busy view sets onto the LAN depots.
    s.base.degrade = true;
    s.base.lod_resolution = 100;
    s.base.hot_report_threshold = 4;
    s.base.server_agent = true;
    s.base.augment_threshold = 2;
    s.base.augment_cooldown = 10 * kSecond;
  }

  // Every viewer arrives within a couple of seconds and browses its *own*
  // region of the freshly published object (a short pan along a latitude
  // band, spread across the whole grid). The shared agent cache therefore
  // cannot collapse the initial storm: the first wave of demand is almost
  // entirely distinct view sets, far beyond what the WAN trunk can deliver
  // inside the deadline.
  const lightfield::SphericalLattice lattice(s.base.lattice);
  const int vs_rows = static_cast<int>(lattice.view_set_rows());
  const int vs_cols = static_cast<int>(lattice.view_set_cols());
  const int vs_count = vs_rows * vs_cols;
  for (int i = 0; i < clients; ++i) {
    std::vector<CursorStep> steps;
    // 37 is coprime with the 128-set grid: the first grid-many clients all
    // start on distinct view sets.
    const int start = (i * 37) % vs_count;
    const int row = start / vs_cols;
    const int col0 = start % vs_cols;
    for (int k = 0; k < 6; ++k) {
      const lightfield::ViewSetId id{row, (col0 + k) % vs_cols};
      steps.push_back({lattice.view_set_center(id), s.base.dwell});
    }
    ScenarioClient sc;
    sc.script = CursorScript(std::move(steps));
    sc.start = static_cast<SimDuration>(i) * (20 * kMillisecond);
    s.clients.push_back(std::move(sc));
  }
  return s;
}

Scenario teleport_under_faults(int clients) {
  Scenario s;
  s.name = "teleport_faults";
  s.base.lattice = scenario_lattice();
  s.base.which = Case::kWanWithLanDepot;
  filler_content(s.base);
  s.base.dwell = 500 * kMillisecond;
  s.base.publish_replicas = 2;
  s.base.timeouts = {.control = 500 * kMillisecond, .data = 5 * kSecond};
  s.base.retry.max_attempts = 4;
  s.base.retry.base_backoff = 250 * kMillisecond;
  s.base.repair_interval = 5 * kSecond;
  // Depot crash + lossy window + silent corruption, all mid-browse.
  s.base.faults.crashes.push_back(
      {.depot = "ca-0", .at = 5 * kSecond, .restart_after = 10 * kSecond});
  s.base.faults.drops.push_back(
      {.at = 8 * kSecond, .duration = 5 * kSecond, .prob = 0.3, .depot = "ca-1"});
  s.base.faults.corruptions.push_back(
      {.at = 3 * kSecond, .duration = 3 * kSecond, .prob = 1.0, .depot = {}});

  const lightfield::SphericalLattice lattice(s.base.lattice);
  for (int i = 0; i < clients; ++i) {
    ScenarioClient sc;
    // Each client teleports along its own latitude band — the prefetch
    // worst case, and every jump lands on unstaged WAN data.
    sc.script = CursorScript::teleport(lattice, s.base.dwell, /*segment=*/4,
                                       /*steps_per_set=*/2, /*jumps=*/3,
                                       /*row=*/1 + (i % 4));
    sc.start = static_cast<SimDuration>(i) * (250 * kMillisecond);
    s.clients.push_back(std::move(sc));
  }
  return s;
}

Scenario lease_expiry_wave(int clients) {
  Scenario s;
  s.name = "lease_expiry";
  s.base.lattice = scenario_lattice();
  s.base.which = Case::kWanWithLanDepot;
  filler_content(s.base);
  s.base.dwell = 500 * kMillisecond;
  // Leases this short expire in waves while playback is still running; with
  // no refresher the agent must notice the evictions and fail back to the
  // WAN copies (then restage). The agent cache is kept far smaller than the
  // database so demand keeps going back to the staged LAN replicas — where
  // it runs into the expired allocations. Playback starts only after the
  // whole database is staged (warm): every lease is then ticking from
  // roughly the same instant, so they expire in a wave mid-browse instead
  // of being refreshed just-in-time by proximity-ordered staging.
  s.warm_site_cache = true;
  s.base.staging_lease = 4 * kSecond;
  s.base.lease_refresh = false;
  s.base.agent_cache_bytes = 4ull << 20;
  s.base.max_refetch = 4;
  s.base.retry.max_attempts = 3;
  s.base.retry.base_backoff = 100 * kMillisecond;

  const lightfield::SphericalLattice lattice(s.base.lattice);
  for (int i = 0; i < clients; ++i) {
    ScenarioClient sc;
    sc.script = CursorScript::standard(lattice, s.base.dwell, 24,
                                       700 + static_cast<std::uint64_t>(i));
    sc.start = static_cast<SimDuration>(i) * (250 * kMillisecond);
    s.clients.push_back(std::move(sc));
  }
  return s;
}

Scenario pda_link(bool lod_streaming) {
  Scenario s;
  s.name = lod_streaming ? "pda_link/lod" : "pda_link/full";
  s.base.lattice = scenario_lattice();
  s.base.which = Case::kWanStreaming;  // nothing on the LAN: every miss is WAN
  filler_content(s.base);
  s.base.dwell = 2 * kSecond;
  // A PDA-class last-mile trunk: a full-resolution view set needs several
  // seconds to cross it, so full-only delivery cannot make the 1 s deadline.
  // The coarse tiers (1/4 and 1/16 of the full payload) fit with room to
  // spare even when a background refinement shares the link.
  s.base.wan_bandwidth_bps = 2.5e6;
  s.base.wan_latency = 120 * kMillisecond;
  s.base.wan_jitter = 0.0;
  // No prefetch: on this link speculative transfers would only steal
  // bandwidth from the demand path; fluidity comes from the LOD ladder.
  s.base.prefetch = false;
  s.slo_deadline = kSecond;
  s.base.interactivity_deadline = s.slo_deadline;
  // Seed the WAN latency estimate above the deadline so the policy engine
  // degrades the very first access instead of blowing the SLO to learn.
  s.base.fetch_latency.wan_prior = 3 * kSecond;
  if (lod_streaming) {
    s.base.lod_resolutions = {64, 32};
    s.base.lod_streaming = true;
    s.base.lod_refine = true;
  }
  // Run the simulator dry after the last step: background refinements must
  // finish so the gate can check refined == refinements started.
  s.drain = true;

  // Two viewers pan out along their own latitude band and back. The return
  // leg revisits view sets whose background refinement has had a full dwell
  // to land — those accesses must be full-resolution cache hits, proving the
  // coarse copy was swapped out rather than served stale.
  const lightfield::SphericalLattice lattice(s.base.lattice);
  const int vs_cols = static_cast<int>(lattice.view_set_cols());
  for (int i = 0; i < 2; ++i) {
    std::vector<CursorStep> steps;
    const int row = 2 + i * 3;
    const int col0 = i * (vs_cols / 2);
    for (int k = 0; k < 6; ++k) {
      const lightfield::ViewSetId id{row, (col0 + k) % vs_cols};
      steps.push_back({lattice.view_set_center(id), s.base.dwell});
    }
    for (int k = 4; k >= 0; --k) {
      const lightfield::ViewSetId id{row, (col0 + k) % vs_cols};
      steps.push_back({lattice.view_set_center(id), s.base.dwell});
    }
    ScenarioClient sc;
    sc.script = CursorScript(std::move(steps));
    sc.start = static_cast<SimDuration>(i) * (500 * kMillisecond);
    s.clients.push_back(std::move(sc));
  }
  return s;
}

Scenario site_cache(bool warm, int clients) {
  Scenario s;
  s.name = warm ? "site_cache/warm" : "site_cache/cold";
  s.base.lattice = scenario_lattice();
  s.base.which = Case::kWanWithLanDepot;
  filler_content(s.base);
  s.base.dwell = kSecond;
  s.warm_site_cache = warm;
  // Warm the *site*, not one lucky agent: the clients are spread over
  // several co-sited agents sharing one SiteCache index, so the warm half
  // measures cross-client sharing of staged replicas, and the cold half
  // races demand against coalesced (single-flight) staging.
  s.base.site_agents = std::max(2, clients / 2);
  s.base.site_cache = true;

  const lightfield::SphericalLattice lattice(s.base.lattice);
  for (int i = 0; i < clients; ++i) {
    ScenarioClient sc;
    sc.script = CursorScript::standard(lattice, s.base.dwell, 8,
                                       900 + static_cast<std::uint64_t>(i));
    sc.start = static_cast<SimDuration>(i) * (250 * kMillisecond);
    s.clients.push_back(std::move(sc));
  }
  return s;
}

Scenario co_sited_crowd(bool site, int clients) {
  Scenario s;
  s.name = site ? "co_sited/site" : "co_sited/control";
  s.base.lattice = scenario_lattice();
  s.base.which = Case::kWanWithLanDepot;  // aggressive prestaging on
  filler_content(s.base);
  s.base.dwell = 400 * kMillisecond;
  s.base.wan_bandwidth_bps = 50e6;
  // The crowd shares one LAN site behind several client agents, and every
  // agent prestages the whole database: without the cooperative index the
  // site pays the WAN staging bill `site_agents` times over — the restage
  // stampede this pair of rows measures.
  s.base.site_agents = std::max(2, clients / 10);
  s.base.site_cache = site;
  // The sharded directory runs on both rows (the 100-user query fan-in is
  // identical either way), so the pair isolates the site cache's effect.
  s.base.dvs_shards = 4;
  s.base.dvs_shard_service = 200 * kMicrosecond;

  const lightfield::SphericalLattice lattice(s.base.lattice);
  for (int i = 0; i < clients; ++i) {
    ScenarioClient sc;
    sc.script = CursorScript::standard(lattice, s.base.dwell, 12,
                                       1300 + static_cast<std::uint64_t>(i));
    sc.start = static_cast<SimDuration>(i) * (50 * kMillisecond);
    s.clients.push_back(std::move(sc));
  }
  return s;
}

}  // namespace lon::session
