// End-to-end remote-visualization experiments — paper section 4.2/4.3.
//
// "We ran tests for three cases as follows:
//   1. LFD stored in LAN, driven by client agent pre-fetch.
//   2. LFD stored remotely in California and streamed by pre-fetching
//      initiated by client agent.
//   3. LFD stored remotely in California, aggressively pre-staged on a local
//      depot in LAN and pre-fetched by client agent from the LAN depot."
//
// Topology (the paper's actual configuration, section 4.3): the view sets
// are striped across three depots in "California" behind a shared 100 Mb/s
// WAN trunk (~35 ms one way), and — in case 3 — prestaged across four depots
// attached to the client agent by a 1 Gb/s LAN. Client and client agent are
// distinct machines on that LAN. In all three cases the same quadrant
// prefetch policy runs on the client agent.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/fault.hpp"
#include "obs/obs.hpp"
#include "lightfield/lattice.hpp"
#include "session/cursor.hpp"
#include "session/metrics.hpp"
#include "streaming/client.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/types.hpp"

namespace lon::session {

enum class Case {
  kLanData = 1,         ///< case 1: database already on the LAN depots
  kWanStreaming = 2,    ///< case 2: WAN + prefetch only
  kWanWithLanDepot = 3, ///< case 3: WAN + aggressive LAN-depot prestaging
};

[[nodiscard]] const char* to_string(Case c);

struct ExperimentConfig {
  lightfield::LatticeConfig lattice = lightfield::LatticeConfig::paper(200);
  Case which = Case::kWanWithLanDepot;

  // Workload.
  SimDuration dwell = 2 * kSecond;   ///< user pause between movements
  std::size_t accesses = 58;         ///< view-set requests the script generates
  std::uint64_t seed = 2003;
  /// When set, replaces the standard seeded walk (dwell/accesses/seed are
  /// then ignored) — how the policy bench replays its scripted cursor walks.
  std::optional<CursorScript> script;

  // Content policy: true renders every view set (slow); false renders only
  // the view sets the script touches and publishes size-matched filler for
  // the rest.
  bool full_content = false;
  // Publish filler for everything and skip client-side decoding entirely —
  // for communication-latency-only studies (set client.decode = false too).
  bool all_filler = false;

  // Client behaviour.
  streaming::ClientConfig client;

  // Agent behaviour (case-independent knobs; staging/prefetch are set by the
  // case but can be overridden for ablations).
  std::uint64_t agent_cache_bytes = 512ull << 20;
  bool prefetch = true;
  /// Policy engine: which prefetch scheduler and cache replacement policy the
  /// agent runs, plus the predictive scheduler's budget/horizon knobs.
  policy::PrefetchStrategy prefetch_strategy = policy::PrefetchStrategy::kQuadrant;
  policy::EvictionStrategy eviction = policy::EvictionStrategy::kLru;
  SimDuration prefetch_horizon = 2 * kSecond;
  std::size_t prefetch_max_inflight = 0;   ///< 0 = unlimited
  std::uint64_t prefetch_max_bytes = 0;    ///< 0 = unlimited
  int staging_concurrency = 4;
  streaming::ClientAgentConfig::StagingOrder staging_order =
      streaming::ClientAgentConfig::StagingOrder::kProximity;
  bool pause_staging_on_miss = false;
  int wan_streams = 4;

  // Topology.
  double wan_bandwidth_bps = 100e6;
  SimDuration wan_latency = 35 * kMillisecond;
  double wan_jitter = 0.05;
  double lan_bandwidth_bps = 1e9;
  SimDuration lan_latency = 50 * kMicrosecond;
  int wan_depot_count = 3;   ///< "striped across three depots in California"
  int lan_depot_count = 4;   ///< "striped across four depots ... by a 1Gb/s LAN"
  double depot_disk_bps = 80e6;
  std::uint64_t net_seed = 7;  ///< 0 disables jitter entirely
  /// Debug: force every max-min solve to cover the whole flow graph instead
  /// of only the affected component. Results must be identical either way;
  /// differential tests flip this to prove it.
  bool full_network_resolve = false;

  // Robustness / fault injection. The defaults reproduce the fault-free
  // runs exactly: no faults, no deadlines, no retries, no repair.
  int publish_replicas = 1;          ///< copies of each block across the WAN depots
  fault::FaultPlan faults;           ///< event times relative to script start
  ibp::FabricTimeouts timeouts;      ///< 0 = no per-operation deadlines
  lors::RetryPolicy retry;           ///< agent download retry discipline
  int max_refetch = 2;               ///< agent end-to-end re-resolutions
  SimDuration staging_lease = 24 * 3600 * kSecond;
  bool lease_refresh = false;        ///< keep staged soft copies alive
  SimDuration lease_refresh_interval = 0;  ///< 0 = staging_lease / 4

  // --- Cooperative site cache / sharded DVS ---------------------------------

  /// Client agents behind the one LAN switch; clients are assigned to them
  /// round-robin. 1 (default) is the historical single-agent topology.
  int site_agents = 1;
  /// Share one cooperative SiteCache index across all co-sited agents:
  /// staged copies are discoverable site-wide and concurrent restages of
  /// the same view set coalesce into a single WAN fetch.
  bool site_cache = false;
  std::uint64_t site_cache_bytes = 0;  ///< site index byte budget (0 = unbounded)
  /// DVS directory shards (lookup tables partitioned by ViewSetId hash).
  std::size_t dvs_shards = 1;
  /// Serial per-query service time a DVS shard charges (0 = uncontended).
  SimDuration dvs_shard_service = 0;
  /// > 0: the publisher runs a repair sweep this often, probing a slice of
  /// the database's exNodes and re-replicating extents that lost replicas
  /// to crashed depots (healed exNodes are re-installed into the DVS).
  SimDuration repair_interval = 0;
  int repair_target_replicas = 0;    ///< 0 = publish_replicas
  std::size_t repair_batch = 4;      ///< exNodes probed per sweep

  // Concurrency (the parallel demand path). The defaults reproduce the
  // serial seed behaviour exactly.
  ThreadPool* pool = nullptr;             ///< CPU pool for verify/codec work
  bool pipeline_decompress = false;       ///< overlap decode with stripe arrival
  std::size_t pipeline_inflight = 0;      ///< chunk decodes in flight (0 = 2x pool)
  /// > 0: publish view sets as chunked (LFZC) containers of this chunk size,
  /// the format the pipeline can overlap. 0 = plain lfz (the seed format).
  std::uint64_t publish_chunk_bytes = 0;

  // Overload protection. The defaults keep every mechanism off: no admission
  // control, no degradation ladder, no coarse tier, no server agent — the
  // fault-free runs reproduce the seed exactly.
  streaming::AdmissionConfig admission;    ///< demand-path admission at the agent
  SimDuration interactivity_deadline = 0;  ///< SLO the triage and ladder work to
  bool degrade = false;                    ///< enable the degradation ladder
  int degrade_after_misses = 3;            ///< deadline misses per rung down
  int upgrade_after_hits = 8;              ///< clean deliveries per rung up
  /// > 0: publish a coarse tier at this view resolution next to the full
  /// database (lightfield::MultiDatabase) for the kCoarseLod rung.
  std::size_t lod_resolution = 0;

  // Continuous LOD streaming. Coarse tiers of the scene published next to
  // the full database (each in its own DVS namespace); with lod_streaming
  // the agent serves the finest tier that fits the interactivity deadline
  // and refines to full resolution in the background.
  std::vector<std::size_t> lod_resolutions;  ///< coarse tier view resolutions
  bool lod_streaming = false;  ///< per-access LOD pick by the policy engine
  bool lod_refine = true;      ///< background upgrade after a coarse serve
  /// Fetch-latency estimator priors handed to the agent. Constrained-link
  /// profiles (the PDA-class scenario) seed the WAN prior above the deadline
  /// so the very first access already degrades instead of blowing the SLO.
  policy::FetchLatencyEstimator::Config fetch_latency;

  int hot_report_threshold = 0;  ///< sheds per view set before reporting hot
  /// Run the server-side generator/augmenter behind the DVS.
  bool server_agent = false;
  streaming::AdmissionConfig server_admission;  ///< generation-tier admission
  int augment_threshold = 0;      ///< hot reports before fanning replicas out
  SimDuration augment_cooldown = 60 * kSecond;  ///< per-view-set augment hysteresis
};

struct ExperimentResult {
  std::vector<streaming::AccessRecord> accesses;
  AccessSummary summary;
  streaming::ClientAgent::Stats agent_stats;
  std::size_t staged_at_end = 0;       ///< view sets prestaged when the run ended
  bool staging_complete = false;
  SimTime script_duration = 0;         ///< virtual time from first to last access
  double db_compressed_bytes = 0;      ///< published database size
  double db_uncompressed_bytes = 0;
  double compression_ratio = 0;
  std::size_t failed_accesses = 0;     ///< view requests that never delivered
  RobustnessSummary robustness;        ///< self-healing counters for the run
  fault::FaultStats fault_stats;       ///< what the injector actually did
  /// The run's private observability context: every component reported into
  /// `obs->metrics`, and `obs->trace` (enabled for experiments) holds the
  /// full span tree — export it with write_chrome_trace / write_jsonl.
  std::shared_ptr<obs::Context> obs;
};

/// Builds the full system for one case, publishes the database, replays the
/// orchestrated cursor script (each movement waits for the view it needs,
/// then dwells), and returns the access trace.
ExperimentResult run_experiment(const ExperimentConfig& config);

// --- Multi-client scaling -----------------------------------------------------
//
// N concurrent clients on the same LAN share one client agent — and with it
// the view-set cache, the obs registry, the LAN prestage depots and the
// depot/WAN capacity. Each client replays its own cursor script; requests
// interleave in virtual time, so the driver exercises exactly the contention
// the scalability benches measure.

struct MultiClientConfig {
  ExperimentConfig base;              ///< topology, case, faults, client knobs
  int clients = 8;
  std::size_t accesses_per_client = 25;
  /// Per-client cursor-script seed base (client i uses client_seed + i).
  std::uint64_t client_seed = 100;
  /// Stagger between client starts so the scripts interleave rather than
  /// moving in lockstep.
  SimDuration start_stagger = 250 * kMillisecond;
};

struct MultiClientResult {
  struct PerClient {
    std::vector<streaming::AccessRecord> accesses;
    AccessSummary summary;
    std::size_t failed_accesses = 0;
    /// From this client's own obs histogram ("component=client,inst=i").
    double p50_total_s = 0.0;
    double p99_total_s = 0.0;
  };
  std::vector<PerClient> clients;
  streaming::ClientAgent::Stats agent_stats;
  SimTime script_duration = 0;         ///< first start to last completion
  std::size_t failed_accesses = 0;     ///< summed over clients
  std::size_t min_client_delivered = 0;  ///< worst-off client's deliveries
  bool staging_complete = false;
  fault::FaultStats fault_stats;

  // Simulator-core cost counters (deterministic; see ScenarioResult).
  std::uint64_t sim_events = 0;
  std::uint64_t sim_scheduled = 0;
  std::uint64_t net_reallocs = 0;
  std::uint64_t net_realloc_flows_touched = 0;
  double wall_s = 0.0;  ///< host wall-clock of the run — NOT deterministic

  std::shared_ptr<obs::Context> obs;
};

/// Builds one system with `clients` client machines, publishes the union of
/// the per-client scripts' view sets, and drives every script to completion.
MultiClientResult run_multi_client(const MultiClientConfig& config);

}  // namespace lon::session
