// The assembled experiment topology — extracted from experiment.cpp so
// scenario compositions (session/scenario.hpp) can reuse the exact same
// system the canonical experiments run on.
//
// The paper's topology (section 4.3) with `client_count` client machines on
// the LAN, all sharing one client agent. Node-creation order for one client
// matches the historical single-client assembly exactly, so existing seeded
// runs stay bit-identical.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "lbone/lbone.hpp"
#include "lightfield/multidb.hpp"
#include "lightfield/procedural.hpp"
#include "lors/lors.hpp"
#include "session/cursor.hpp"
#include "session/experiment.hpp"
#include "session/publisher.hpp"
#include "streaming/client.hpp"
#include "streaming/client_agent.hpp"
#include "streaming/dvs.hpp"
#include "streaming/server_agent.hpp"
#include "streaming/site_cache.hpp"

namespace lon::session {

struct System {
  std::shared_ptr<obs::Context> obs;
  sim::Simulator sim;
  sim::Network net;
  ibp::Fabric fabric;
  lors::Lors lors;
  lightfield::ProceduralSource source;

  sim::NodeId lan_switch = 0;
  std::vector<sim::NodeId> client_nodes;
  sim::NodeId agent_node = 0;
  /// Extra co-sited agent nodes (config.site_agents > 1). Appended after
  /// every historical node so single-agent runs stay bit-identical.
  std::vector<sim::NodeId> agent_nodes;
  std::vector<std::string> lan_depots;
  sim::NodeId wan_router = 0;
  std::vector<std::string> wan_depots;
  sim::NodeId dvs_node = 0;
  sim::NodeId server_node = 0;

  std::unique_ptr<lbone::Directory> lbone;
  std::unique_ptr<streaming::DvsServer> dvs;
  /// Shared per-site depot cache index (config.site_cache only). Declared
  /// before the agents: they deregister their listeners on destruction.
  std::unique_ptr<streaming::SiteCache> site_cache;
  /// All co-sited client agents (config.site_agents of them; at least one).
  std::vector<std::unique_ptr<streaming::ClientAgent>> agents;
  /// The first (historical) agent — the single-agent topology's only one.
  streaming::ClientAgent* agent = nullptr;
  std::vector<std::unique_ptr<streaming::Client>> clients;
  /// Runtime generator + replica augmenter (config.server_agent only).
  std::unique_ptr<streaming::ServerAgent> server_agent;

  /// Coarse tiers for continuous LOD streaming and the kCoarseLod
  /// degradation rung (config.lod_resolutions / lod_resolution): the same
  /// lattice geometry published at lower view resolutions, catalogued next
  /// to the full database in a MultiDatabase manifest (the LOD ladder), each
  /// tier served through its own DVS namespace. Ordered finest first.
  struct LodTier {
    std::size_t resolution = 0;
    std::unique_ptr<lightfield::ProceduralSource> source;
    std::unique_ptr<streaming::DvsServer> dvs;
    /// Per-tier runtime generator (config.server_agent only).
    std::unique_ptr<streaming::ServerAgent> agent;
  };
  lightfield::MultiDatabase multidb;
  std::vector<LodTier> lod_tiers;

  /// The owner's catalog from publish(); the repair daemon works from it.
  PublishResult published;

  System(const ExperimentConfig& config, int client_count);

  /// Publishes the database: real pixels for every view set any script
  /// visits, size-matched filler elsewhere (per the content policy). Also
  /// publishes every coarse tier when config.lod_resolutions (or the legacy
  /// config.lod_resolution) is set.
  PublishResult& publish(const ExperimentConfig& config,
                         const std::vector<const CursorScript*>& scripts);

  void make_agent(const ExperimentConfig& config);
  void make_clients(const ExperimentConfig& config);

  /// Begins aggressive prestaging on every agent.
  void start_staging();
  /// True once every agent's staging queue has drained.
  [[nodiscard]] bool staging_complete() const;
  /// Per-agent stats summed over all co-sited agents.
  [[nodiscard]] streaming::ClientAgent::Stats agent_stats() const;
  /// Registers the runtime generator behind the DVS (no-op unless
  /// config.server_agent).
  void make_server_agent(const ExperimentConfig& config);

  /// Starts the publisher's repair daemon (no-op unless repair_interval > 0):
  /// every interval, probe the next repair_batch exNodes in the catalog, drop
  /// dead replicas, re-replicate short extents, and push the healed exNode
  /// back into the DVS so readers stop chasing capabilities on crashed depots.
  void start_repair(const ExperimentConfig& config);

  /// Arms the fault plan with every event shifted to the actual script start
  /// (publication already consumed virtual time).
  void arm_faults(fault::FaultInjector& injector, const fault::FaultPlan& faults,
                  SimTime script_start);

 private:
  void ensure_lod(const ExperimentConfig& config);

  std::vector<lightfield::ViewSetId> visited_;  ///< content policy's real ids
  std::size_t repair_cursor_ = 0;
  std::function<void()> repair_sweep_;
  SimDuration repair_interval_ = 0;
  std::size_t repair_batch_ = 4;
  int repair_target_replicas_ = 1;
  std::vector<std::string> repair_depots_;
};

}  // namespace lon::session
