#include "session/cursor.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace lon::session {

std::size_t CursorScript::expected_accesses(
    const lightfield::SphericalLattice& lattice) const {
  if (steps_.empty()) return 0;
  std::size_t accesses = 1;
  lightfield::ViewSetId current = lattice.view_set_of(steps_.front().direction);
  for (const CursorStep& step : steps_) {
    const lightfield::ViewSetId id = lattice.view_set_of(step.direction);
    if (!(id == current)) {
      ++accesses;
      current = id;
    }
  }
  return accesses;
}

namespace {

/// Appends a constant-rate pan of `sets` view-set widths starting at `phi`
/// (radians, moving `direction` = +-1), sampling `steps_per_set` times per
/// set width. Returns the phi where the pan ended.
double emit_pan(std::vector<CursorStep>& steps, double theta, double phi,
                double set_width, std::size_t sets, int steps_per_set, int direction,
                SimDuration dwell) {
  const double dphi = direction * set_width / steps_per_set;
  const auto total = sets * static_cast<std::size_t>(steps_per_set);
  for (std::size_t i = 0; i < total; ++i) {
    phi += dphi;
    double wrapped = std::fmod(phi, 2 * kPi);
    if (wrapped < 0) wrapped += 2 * kPi;
    steps.push_back(CursorStep{Spherical{theta, wrapped}, dwell});
  }
  return phi;
}

double row_theta(const lightfield::SphericalLattice& lattice, int row) {
  if (row < 0) row = static_cast<int>(lattice.view_set_rows()) / 2;
  return lattice.view_set_center({row, 0}).theta;
}

}  // namespace

CursorScript CursorScript::smooth_pan(const lightfield::SphericalLattice& lattice,
                                      SimDuration dwell, std::size_t sets,
                                      int steps_per_set, int row) {
  const double set_width =
      lattice.config().view_set_span * deg2rad(lattice.config().angular_step_deg);
  const double theta = row_theta(lattice, row);
  const int r = row < 0 ? static_cast<int>(lattice.view_set_rows()) / 2 : row;
  std::vector<CursorStep> steps;
  steps.push_back(CursorStep{lattice.view_set_center({r, 0}), dwell});
  emit_pan(steps, theta, steps.front().direction.phi, set_width, sets, steps_per_set,
           +1, dwell);
  return CursorScript(std::move(steps));
}

CursorScript CursorScript::reversal(const lightfield::SphericalLattice& lattice,
                                    SimDuration dwell, std::size_t sets_out,
                                    int steps_per_set, int row) {
  const double set_width =
      lattice.config().view_set_span * deg2rad(lattice.config().angular_step_deg);
  const double theta = row_theta(lattice, row);
  const int r = row < 0 ? static_cast<int>(lattice.view_set_rows()) / 2 : row;
  std::vector<CursorStep> steps;
  steps.push_back(CursorStep{lattice.view_set_center({r, 0}), dwell});
  const double turn = emit_pan(steps, theta, steps.front().direction.phi, set_width,
                               sets_out, steps_per_set, +1, dwell);
  emit_pan(steps, theta, turn, set_width, sets_out, steps_per_set, -1, dwell);
  return CursorScript(std::move(steps));
}

CursorScript CursorScript::teleport(const lightfield::SphericalLattice& lattice,
                                    SimDuration dwell, std::size_t segment,
                                    int steps_per_set, std::size_t jumps, int row) {
  const double set_width =
      lattice.config().view_set_span * deg2rad(lattice.config().angular_step_deg);
  const double theta = row_theta(lattice, row);
  const int r = row < 0 ? static_cast<int>(lattice.view_set_rows()) / 2 : row;
  std::vector<CursorStep> steps;
  steps.push_back(CursorStep{lattice.view_set_center({r, 0}), dwell});
  double phi = steps.front().direction.phi;
  for (std::size_t j = 0; j <= jumps; ++j) {
    phi = emit_pan(steps, theta, phi, set_width, segment, steps_per_set, +1, dwell);
    if (j < jumps) phi += kPi;  // half the sphere away: unambiguous teleport
  }
  return CursorScript(std::move(steps));
}

CursorScript CursorScript::standard(const lightfield::SphericalLattice& lattice,
                                    SimDuration dwell, std::size_t accesses,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CursorStep> steps;

  // Start in the middle latitude band, column 0 — mirrors a user who begins
  // looking at the dataset's "front".
  lightfield::ViewSetId current{static_cast<int>(lattice.view_set_rows() / 2), 0};
  std::size_t generated = 1;

  // Sweep inside the current view set for a couple of steps (local browsing
  // that costs nothing), then hop to a neighbour; occasionally step back to
  // the previous set, producing the revisits that make agent-cache hits.
  lightfield::ViewSetId previous = current;
  auto emit_inside = [&](const lightfield::ViewSetId& id, int count) {
    const Spherical center = lattice.view_set_center(id);
    const double half_window =
        lattice.config().view_set_span * deg2rad(lattice.config().angular_step_deg) * 0.35;
    for (int i = 0; i < count; ++i) {
      Spherical dir{
          std::clamp(center.theta + rng.uniform(-half_window, half_window), 0.05,
                     kPi - 0.05),
          center.phi + rng.uniform(-half_window, half_window),
      };
      if (dir.phi < 0) dir.phi += 2 * kPi;
      steps.push_back(CursorStep{dir, dwell});
    }
  };

  emit_inside(current, 2);
  while (generated < accesses) {
    lightfield::ViewSetId next;
    if (generated >= 2 && rng.below(5) == 0 && !(previous == current)) {
      next = previous;  // backtrack: ~20% of transitions revisit
    } else {
      const auto neighbors = lattice.neighbors(current);
      next = neighbors[rng.below(neighbors.size())];
    }
    previous = current;
    current = next;
    ++generated;
    emit_inside(current, 1 + static_cast<int>(rng.below(3)));
  }
  return CursorScript(std::move(steps));
}

}  // namespace lon::session
