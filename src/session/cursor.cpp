#include "session/cursor.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace lon::session {

std::size_t CursorScript::expected_accesses(
    const lightfield::SphericalLattice& lattice) const {
  if (steps_.empty()) return 0;
  std::size_t accesses = 1;
  lightfield::ViewSetId current = lattice.view_set_of(steps_.front().direction);
  for (const CursorStep& step : steps_) {
    const lightfield::ViewSetId id = lattice.view_set_of(step.direction);
    if (!(id == current)) {
      ++accesses;
      current = id;
    }
  }
  return accesses;
}

CursorScript CursorScript::standard(const lightfield::SphericalLattice& lattice,
                                    SimDuration dwell, std::size_t accesses,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<CursorStep> steps;

  // Start in the middle latitude band, column 0 — mirrors a user who begins
  // looking at the dataset's "front".
  lightfield::ViewSetId current{static_cast<int>(lattice.view_set_rows() / 2), 0};
  std::size_t generated = 1;

  // Sweep inside the current view set for a couple of steps (local browsing
  // that costs nothing), then hop to a neighbour; occasionally step back to
  // the previous set, producing the revisits that make agent-cache hits.
  lightfield::ViewSetId previous = current;
  auto emit_inside = [&](const lightfield::ViewSetId& id, int count) {
    const Spherical center = lattice.view_set_center(id);
    const double half_window =
        lattice.config().view_set_span * deg2rad(lattice.config().angular_step_deg) * 0.35;
    for (int i = 0; i < count; ++i) {
      Spherical dir{
          std::clamp(center.theta + rng.uniform(-half_window, half_window), 0.05,
                     kPi - 0.05),
          center.phi + rng.uniform(-half_window, half_window),
      };
      if (dir.phi < 0) dir.phi += 2 * kPi;
      steps.push_back(CursorStep{dir, dwell});
    }
  };

  emit_inside(current, 2);
  while (generated < accesses) {
    lightfield::ViewSetId next;
    if (generated >= 2 && rng.below(5) == 0 && !(previous == current)) {
      next = previous;  // backtrack: ~20% of transitions revisit
    } else {
      const auto neighbors = lattice.neighbors(current);
      next = neighbors[rng.below(neighbors.size())];
    }
    previous = current;
    current = next;
    ++generated;
    emit_inside(current, 1 + static_cast<int>(rng.below(3)));
  }
  return CursorScript(std::move(steps));
}

}  // namespace lon::session
