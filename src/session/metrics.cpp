#include "session/metrics.hpp"

#include <algorithm>
#include <ostream>

namespace lon::session {

using streaming::AccessClass;
using streaming::AccessRecord;

AccessSummary summarize(const std::vector<AccessRecord>& records) {
  AccessSummary s;
  s.total = records.size();
  if (records.empty()) return s;

  std::size_t last_wan = 0;
  bool any_wan = false;
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (records[i].cls == AccessClass::kWan || records[i].cls == AccessClass::kGenerated) {
      last_wan = i;
      any_wan = true;
    }
  }
  s.initial_phase = any_wan ? last_wan + 1 : 0;

  double sum_total = 0.0, sum_comm = 0.0, sum_decomp = 0.0;
  double sum_total_p2 = 0.0;
  double sum_hit = 0.0, sum_lan = 0.0, sum_wan = 0.0;
  std::size_t hits_initial = 0, wan_initial = 0;

  for (std::size_t i = 0; i < records.size(); ++i) {
    const AccessRecord& r = records[i];
    const double total_s = to_seconds(r.total());
    const double comm_s = to_seconds(r.comm_latency);
    sum_total += total_s;
    sum_comm += comm_s;
    sum_decomp += to_seconds(r.decompress_time);
    s.max_total_s = std::max(s.max_total_s, total_s);
    switch (r.cls) {
      case AccessClass::kAgentHit:
        ++s.hits;
        sum_hit += comm_s;
        break;
      case AccessClass::kLanDepot:
        ++s.lan;
        sum_lan += comm_s;
        break;
      case AccessClass::kWan:
      case AccessClass::kGenerated:
        ++s.wan;
        sum_wan += comm_s;
        break;
    }
    if (i < s.initial_phase) {
      if (r.cls == AccessClass::kAgentHit) ++hits_initial;
      if (r.cls == AccessClass::kWan || r.cls == AccessClass::kGenerated) ++wan_initial;
    } else {
      sum_total_p2 += total_s;
    }
  }

  const auto n = static_cast<double>(s.total);
  s.hit_rate = static_cast<double>(s.hits) / n;
  s.wan_rate = static_cast<double>(s.wan) / n;
  if (s.initial_phase > 0) {
    s.wan_rate_initial =
        static_cast<double>(wan_initial) / static_cast<double>(s.initial_phase);
    s.hit_rate_initial =
        static_cast<double>(hits_initial) / static_cast<double>(s.initial_phase);
  }
  s.mean_total_s = sum_total / n;
  s.mean_comm_s = sum_comm / n;
  s.mean_decompress_s = sum_decomp / n;
  const std::size_t phase2 = s.total - s.initial_phase;
  s.mean_total_phase2_s = phase2 > 0 ? sum_total_p2 / static_cast<double>(phase2) : 0.0;
  s.mean_comm_hit_s = s.hits > 0 ? sum_hit / static_cast<double>(s.hits) : 0.0;
  s.mean_comm_lan_s = s.lan > 0 ? sum_lan / static_cast<double>(s.lan) : 0.0;
  s.mean_comm_wan_s = s.wan > 0 ? sum_wan / static_cast<double>(s.wan) : 0.0;
  return s;
}

void print_latency_series(std::ostream& os, const std::string& label,
                          const std::vector<AccessRecord>& records) {
  os << "# " << label << ": client-observed latency per view-set access\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    os << (i + 1) << '\t' << to_seconds(records[i].total()) << '\n';
  }
}

void print_comm_series(std::ostream& os, const std::string& label,
                       const std::vector<AccessRecord>& records) {
  os << "# " << label << ": communication latency per view-set access (class)\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    os << (i + 1) << '\t' << to_seconds(records[i].comm_latency) << '\t'
       << streaming::to_string(records[i].cls) << '\n';
  }
}

void print_summary(std::ostream& os, const std::string& label, const AccessSummary& s) {
  os << "== " << label << " ==\n"
     << "  accesses=" << s.total << " hits=" << s.hits << " lan=" << s.lan
     << " wan=" << s.wan << '\n'
     << "  hit_rate=" << s.hit_rate << " wan_rate=" << s.wan_rate << '\n'
     << "  initial_phase=" << s.initial_phase
     << " (wan_rate=" << s.wan_rate_initial << ", hit_rate=" << s.hit_rate_initial
     << ")\n"
     << "  mean_total=" << s.mean_total_s << "s (phase2=" << s.mean_total_phase2_s
     << "s, max=" << s.max_total_s << "s)\n"
     << "  mean_comm: hit=" << s.mean_comm_hit_s << "s lan=" << s.mean_comm_lan_s
     << "s wan=" << s.mean_comm_wan_s << "s\n"
     << "  mean_decompress=" << s.mean_decompress_s << "s\n";
}

void print_robustness(std::ostream& os, const std::string& label,
                      const RobustnessSummary& s) {
  os << "== " << label << " (robustness) ==\n"
     << "  fabric: timeouts=" << s.timeouts << " lost=" << s.requests_lost
     << " dropped=" << s.requests_dropped << " flows_killed=" << s.flows_killed << '\n'
     << "  lors: retries=" << s.retries << " failovers=" << s.failovers
     << " corruption_detected=" << s.corruption_detected << '\n'
     << "  repair: runs=" << s.repairs_run << " replicas_lost=" << s.replicas_lost
     << " replicas_repaired=" << s.replicas_repaired << '\n'
     << "  agent: refetches=" << s.refetches << " invalidations=" << s.invalidations
     << " restaged=" << s.restaged << " lease_refreshes=" << s.lease_refreshes << '\n'
     << "  overload: shed=" << s.demand_shed << " (queue=" << s.shed_queue_full
     << ", tokens=" << s.shed_no_tokens << ", deadline=" << s.shed_deadline
     << ") generation_shed=" << s.generation_shed
     << " shed_retries=" << s.shed_retries << '\n'
     << "  degrade: down=" << s.downgrades << " up=" << s.upgrades
     << " lan_only=" << s.degrade_lan_only << " lod=" << s.degrade_lod
     << " demand_only=" << s.degrade_demand_only << '\n'
     << "  lod: coarse_serves=" << s.lod_coarse_serves
     << " refinements=" << s.lod_refinements << " refined=" << s.lod_refined << '\n'
     << "  augment: hot_reports=" << s.hot_reports << " augments=" << s.augments
     << '\n'
     << "  site: hits=" << s.site_hits << " adopted=" << s.site_adopted
     << " coalesced=" << s.restage_coalesced
     << " leaders=" << s.site_restage_leaders << " keys=" << s.site_restage_keys
     << " expirations=" << s.site_expirations
     << " stage_wan_bytes=" << s.stage_wan_bytes << '\n';
}

RobustnessSummary collect_robustness(const obs::Registry& registry) {
  RobustnessSummary s;
  s.timeouts = registry.counter_total("ibp.timeouts");
  s.requests_lost = registry.counter_total("ibp.requests_lost");
  s.requests_dropped = registry.counter_total("ibp.requests_dropped");
  s.flows_killed = registry.counter_total("ibp.flows_killed_offline");
  s.retries = registry.counter_total("lors.retries");
  s.failovers = registry.counter_total("lors.failovers");
  s.corruption_detected = registry.counter_total("lors.corruption_detected");
  s.repairs_run = registry.counter_total("lors.repairs_run");
  s.replicas_repaired = registry.counter_total("lors.replicas_repaired");
  s.replicas_lost = registry.counter_total("lors.replicas_lost");
  s.refetches = registry.counter_total("agent.refetches");
  s.invalidations = registry.counter_total("agent.invalidations");
  s.restaged = registry.counter_total("agent.restaged");
  s.lease_refreshes = registry.counter_total("agent.lease_refreshes");
  s.demand_shed = registry.counter_total("agent.demand_shed");
  s.shed_queue_full = registry.counter_total("agent.shed_queue_full");
  s.shed_no_tokens = registry.counter_total("agent.shed_no_tokens");
  s.shed_deadline = registry.counter_total("agent.shed_deadline");
  s.generation_shed = registry.counter_total("server.generation_shed");
  s.shed_retries = registry.counter_total("session.shed_retries");
  s.downgrades = registry.counter_total("agent.downgrades");
  s.upgrades = registry.counter_total("agent.upgrades");
  s.degrade_lan_only = registry.counter_total("agent.degrade_lan_only");
  s.degrade_lod = registry.counter_total("agent.degrade_lod");
  s.degrade_demand_only = registry.counter_total("agent.degrade_demand_only");
  s.hot_reports = registry.counter_total("agent.hot_reports");
  s.augments = registry.counter_total("server.augments");
  s.lod_coarse_serves = registry.counter_total("agent.lod_coarse_serves");
  s.lod_refinements = registry.counter_total("agent.lod_refinements");
  s.lod_refined = registry.counter_total("agent.lod_refined");
  s.restage_coalesced = registry.counter_total("agent.restage_coalesced");
  s.site_hits = registry.counter_total("agent.site_hits");
  s.site_adopted = registry.counter_total("agent.site_adopted");
  s.stage_wan_bytes = registry.counter_total("agent.stage_wan_bytes");
  s.site_expirations = registry.counter_total("site.expirations");
  s.site_restage_leaders = registry.counter_total("site.restage_leaders");
  s.site_restage_keys = registry.counter_total("site.restage_keys");
  return s;
}

}  // namespace lon::session
