// Offline database publication.
//
// "The rendering of all view sets can be completely pre-computed off-line"
// (paper section 3.4). The publisher builds view sets from a source, uploads
// them to the server depots via LoRS, and installs the exNodes into the DVS.
//
// For large streaming experiments only a subset of view sets is ever
// decompressed by the client; the rest are moved around (prefetched, staged)
// but their pixels never matter. The `real_ids` option builds genuine
// compressed view sets for that subset and size-matched filler objects for
// everything else, keeping multi-gigabyte experiments tractable. Filler
// sizes are drawn around the measured mean compressed size so transfer and
// staging behaviour is faithful.
#pragma once

#include <vector>

#include "lightfield/builder.hpp"
#include "lors/lors.hpp"
#include "streaming/dvs.hpp"

namespace lon::session {

struct PublishOptions {
  std::vector<std::string> depots;   ///< upload stripe targets
  int replicas = 1;
  std::uint64_t block_bytes = 512 * 1024;
  SimDuration lease = 24 * 3600 * kSecond;
  sim::TransferOptions net;

  /// Build real pixel content for these ids only; empty = all ids real
  /// (unless all_filler is set).
  std::vector<lightfield::ViewSetId> real_ids;
  /// Publish size-matched filler for *every* view set (pure transfer-shape
  /// studies where the client never decodes). One real view set is still
  /// built to calibrate the filler size.
  bool all_filler = false;
  std::uint64_t filler_seed = 9;
  /// Filler sizes vary this much (fractionally) around the measured mean.
  double filler_size_jitter = 0.1;

  /// > 0: real view sets are published as chunked (LFZC) containers of this
  /// chunk size — the format the client agent's decompress pipeline can
  /// overlap with stripe transfers — compressed across `pool` when given.
  std::uint64_t chunk_bytes = 0;
  ThreadPool* pool = nullptr;
  /// Publish real view sets as inter-view-predicted LFZ2 containers instead
  /// of LFZC — fewer bytes on the wire, decoded transparently by the client.
  bool lfz2 = false;
};

struct PublishResult {
  std::size_t published = 0;
  std::size_t failed = 0;
  std::size_t real = 0;
  std::uint64_t compressed_bytes = 0;    ///< total uploaded
  std::uint64_t uncompressed_bytes = 0;  ///< pixel bytes represented
  double mean_compressed = 0.0;          ///< per view set
  /// The owner's catalog: one exNode per published view set, with manage
  /// capabilities. The DVS copies are for readers; lease maintenance and
  /// repair sweeps work from these.
  std::vector<std::pair<lightfield::ViewSetId, exnode::ExNode>> exnodes;
};

/// Publishes the whole database described by `source` (blocking: pumps the
/// simulator until every upload completes). exNodes are installed into the
/// DVS directly — offline publication happens out of band.
PublishResult publish_database(sim::Simulator& sim, lors::Lors& lors,
                               streaming::DvsServer& dvs,
                               lightfield::ViewSetSource& source, sim::NodeId server_node,
                               const PublishOptions& options);

}  // namespace lon::session
