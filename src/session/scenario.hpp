// Composable adversarial scenarios — the SLO harness.
//
// A Scenario is one named, fully-scripted run: an ExperimentConfig plus a
// per-client cursor script and start offset. run_scenario assembles the
// session::System, publishes the database, and drives every script to
// completion, exactly like run_multi_client — which is now a thin wrapper
// over it. The canned builders below compose the robustness machinery of
// the earlier PRs (faults + retries + repair, admission + degradation +
// augmentation, staging leases, site caching) into deterministic stress
// runs whose virtual-time metrics ci/perf_gate.py hard-fails on.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "session/experiment.hpp"

namespace lon::session {

struct ScenarioClient {
  CursorScript script;
  SimDuration start = 0;  ///< offset from script start (stagger)
};

struct Scenario {
  std::string name;
  ExperimentConfig base;  ///< topology, faults, overload knobs, client knobs
  std::vector<ScenarioClient> clients;
  /// Pump prestaging to completion before the first client starts — the
  /// "warm site cache" half of the cold/warm pair.
  bool warm_site_cache = false;
  /// The interactivity SLO this scenario is judged against. Reported with
  /// the results; the enforcement lives in ci/perf_gate.py.
  SimDuration slo_deadline = kSecond;
  /// After the last script step completes, keep pumping the simulator until
  /// the event queue drains — lets background refinements (and any other
  /// tail work) land so the run's counters balance. Duration still measures
  /// first start to last script completion.
  bool drain = false;
};

struct ScenarioResult {
  std::string name;

  struct PerClient {
    std::vector<streaming::AccessRecord> accesses;
    AccessSummary summary;
    std::size_t failed_accesses = 0;
    std::size_t delivered = 0;  ///< accesses that actually produced a view
    /// From this client's own obs histogram ("component=client,inst=i").
    double p50_total_s = 0.0;
    double p99_total_s = 0.0;
  };
  std::vector<PerClient> clients;

  std::size_t total_accesses = 0;
  std::size_t failed_accesses = 0;
  double mean_total_s = 0.0;
  double p99_worst_s = 0.0;  ///< worst per-client p99
  double p99_mean_s = 0.0;   ///< mean of per-client p99s
  /// Demand requests the agent refused over all it saw — the shed rate.
  double shed_fraction = 0.0;
  /// Starvation check: the worst-off client's delivered count.
  std::size_t min_client_delivered = 0;

  streaming::ClientAgent::Stats agent_stats;
  RobustnessSummary robustness;
  fault::FaultStats fault_stats;
  SimTime duration = 0;  ///< first client start to last completion
  bool staging_complete = false;

  // Simulator-core cost counters (deterministic; the scale gate matches
  // them exactly). Also exported through the obs registry as
  // sim.events_executed / net.reallocs / net.realloc_flows_touched.
  std::uint64_t sim_events = 0;     ///< events executed
  std::uint64_t sim_scheduled = 0;  ///< events scheduled (incl. cancelled)
  std::uint64_t net_reallocs = 0;   ///< max-min solves run
  std::uint64_t net_realloc_flows_touched = 0;  ///< flows re-rated, summed
  double wall_s = 0.0;  ///< host wall-clock of the run — NOT deterministic

  std::shared_ptr<obs::Context> obs;
};

/// Runs one scenario to completion on the virtual clock. Deterministic:
/// same scenario, same result, bit for bit.
ScenarioResult run_scenario(const Scenario& scenario);

// --- Canned adversarial scenarios ---------------------------------------------
//
// Each composes the machinery of several PRs; bench_scenarios reports them
// and ci/perf_gate.py enforces their SLOs. Callers may tweak the returned
// Scenario (the chaos-soak test flips on real content + decoding).

/// Flash crowd: `clients` viewers pile onto one freshly published object
/// over the WAN within a couple of seconds. With `admission` the agent
/// sheds the excess (clients retry with backoff), walks the degradation
/// ladder, and reports hot view sets for replica augmentation; without it
/// every request queues on the trunk and latency collapses.
Scenario flash_crowd(int clients, bool admission);

/// Teleport-heavy browsing under a fault plan: depot crash + request-drop
/// + corruption windows while every client repeatedly jumps across the
/// sphere (worst case for prefetch), with retries, failover and repair on.
Scenario teleport_under_faults(int clients = 4);

/// Lease-expiry wave: aggressive prestaging with a staging lease short
/// enough to expire mid-playback and no refresher — the agent must detect
/// the evictions and re-resolve against the WAN copies.
Scenario lease_expiry_wave(int clients = 4);

/// Cold vs. warm site cache: the same browse either races prestaging
/// (cold) or starts after it completes (warm). The clients sit behind
/// several co-sited agents sharing one cooperative SiteCache index, so the
/// warm half measures site-wide sharing, not per-client staging luck.
Scenario site_cache(bool warm, int clients = 4);

/// Co-sited flash crowd: `clients` viewers spread round-robin over
/// clients/10 co-sited agents, all prestaging the same database over one
/// WAN trunk (the restage stampede). With `site` the cooperative SiteCache
/// coalesces the staging to one WAN copy per view set; without it every
/// agent restages independently — the control. Both rows run the sharded
/// DVS directory.
Scenario co_sited_crowd(bool site, int clients = 100);

/// PDA-class constrained link (PR 7): two viewers pan across a fresh WAN
/// publish behind a last-mile trunk so thin that a full-resolution view set
/// cannot arrive inside the 1 s interactivity deadline. With `lod_streaming`
/// the policy engine serves the finest coarse tier that fits and refines to
/// full resolution in the background — degrading resolution, never fluidity;
/// without it (the control) every access blows the deadline.
Scenario pda_link(bool lod_streaming);

}  // namespace lon::session
