#include "session/experiment.hpp"

#include <memory>
#include <set>
#include <stdexcept>

#include "fault/fault.hpp"
#include "ibp/service.hpp"
#include "lbone/lbone.hpp"
#include "lightfield/procedural.hpp"
#include "lors/lors.hpp"
#include "session/publisher.hpp"
#include "streaming/dvs.hpp"
#include "util/log.hpp"

namespace lon::session {

const char* to_string(Case c) {
  switch (c) {
    case Case::kLanData:
      return "case1-data-in-lan";
    case Case::kWanStreaming:
      return "case2-data-in-wan";
    case Case::kWanWithLanDepot:
      return "case3-with-lan-depot";
  }
  return "?";
}

namespace {

/// The paper's topology (section 4.3) with `client_count` client machines on
/// the LAN, all sharing one client agent. Node-creation order for one client
/// matches the historical single-client assembly exactly, so existing seeded
/// runs stay bit-identical.
struct System {
  std::shared_ptr<obs::Context> obs;
  sim::Simulator sim;
  sim::Network net;
  ibp::Fabric fabric;
  lors::Lors lors;
  lightfield::ProceduralSource source;

  sim::NodeId lan_switch = 0;
  std::vector<sim::NodeId> client_nodes;
  sim::NodeId agent_node = 0;
  std::vector<std::string> lan_depots;
  sim::NodeId wan_router = 0;
  std::vector<std::string> wan_depots;
  sim::NodeId dvs_node = 0;
  sim::NodeId server_node = 0;

  std::unique_ptr<lbone::Directory> lbone;
  std::unique_ptr<streaming::DvsServer> dvs;
  std::unique_ptr<streaming::ClientAgent> agent;
  std::vector<std::unique_ptr<streaming::Client>> clients;

  System(const ExperimentConfig& config, int client_count)
      : obs(std::make_shared<obs::Context>()),
        net(sim, config.net_seed),
        fabric(sim, net, obs.get()),
        lors(sim, net, fabric, 0x10f5, obs.get()),
        source(config.lattice) {
    // A private observability context per run: counters start at zero, spans
    // start empty, and concurrent experiments never share state. Tracing is
    // on so every run comes back with its full span tree.
    obs->trace.set_enabled(true);
    fabric.set_timeouts(config.timeouts);

    // LAN: client(s), client agent and the LAN depots hang off one switch.
    lan_switch = net.add_node("lan-switch");
    const sim::LinkConfig lan_link{config.lan_bandwidth_bps, config.lan_latency, 0.0};
    for (int i = 0; i < client_count; ++i) {
      const std::string name =
          client_count == 1 ? "client" : "client-" + std::to_string(i);
      const sim::NodeId node = net.add_node(name);
      net.add_link(node, lan_switch, lan_link);
      client_nodes.push_back(node);
    }
    agent_node = net.add_node("client-agent");
    net.add_link(agent_node, lan_switch, lan_link);

    for (int i = 0; i < config.lan_depot_count; ++i) {
      const std::string name = "lan-" + std::to_string(i);
      const sim::NodeId node = net.add_node(name + "-node");
      net.add_link(node, lan_switch, lan_link);
      ibp::DepotConfig depot;
      depot.capacity_bytes = 16ull << 30;
      depot.max_alloc_bytes = 1ull << 30;
      depot.disk_bytes_per_sec = config.depot_disk_bps;
      depot.rng_seed = 0x1a00 + static_cast<std::uint64_t>(i);
      fabric.add_depot(node, name, depot);
      lan_depots.push_back(name);
    }

    // WAN: a shared trunk to the "California" side; server depots, the DVS
    // server and the (publishing) server node live behind it.
    wan_router = net.add_node("wan-router");
    net.add_link(lan_switch, wan_router,
                 {config.wan_bandwidth_bps, config.wan_latency, config.wan_jitter});
    const sim::LinkConfig far_lan{1e9, kMillisecond, 0.0};

    for (int i = 0; i < config.wan_depot_count; ++i) {
      const std::string name = "ca-" + std::to_string(i);
      const sim::NodeId node = net.add_node(name + "-node");
      net.add_link(node, wan_router, far_lan);
      ibp::DepotConfig depot;
      depot.capacity_bytes = 64ull << 30;
      depot.max_alloc_bytes = 1ull << 30;
      depot.disk_bytes_per_sec = config.depot_disk_bps;
      depot.rng_seed = 0xca00 + static_cast<std::uint64_t>(i);
      fabric.add_depot(node, name, depot);
      wan_depots.push_back(name);
    }
    dvs_node = net.add_node("dvs-server");
    net.add_link(dvs_node, wan_router, far_lan);
    server_node = net.add_node("server");
    net.add_link(server_node, wan_router, far_lan);

    lbone = std::make_unique<lbone::Directory>(net, fabric, obs.get());
    for (const auto& name : lan_depots) lbone->register_depot(name);
    for (const auto& name : wan_depots) lbone->register_depot(name);

    dvs = std::make_unique<streaming::DvsServer>(sim, net, dvs_node, source.lattice(),
                                                 streaming::DvsConfig{}, obs.get());
  }

  /// Publishes the database: real pixels for every view set any script
  /// visits, size-matched filler elsewhere (per the content policy).
  PublishResult publish(const ExperimentConfig& config,
                        const std::vector<const CursorScript*>& scripts) {
    PublishOptions publish;
    publish.depots = (config.which == Case::kLanData) ? lan_depots : wan_depots;
    publish.replicas = config.publish_replicas;
    publish.net.streams = 8;
    publish.all_filler = config.all_filler;
    publish.chunk_bytes = config.publish_chunk_bytes;
    publish.pool = config.pool;
    if (!config.full_content && !config.all_filler) {
      std::set<std::pair<int, int>> visited;
      for (const CursorScript* script : scripts) {
        for (const CursorStep& step : script->steps()) {
          const auto id = source.lattice().view_set_of(step.direction);
          visited.insert({id.row, id.col});
        }
      }
      for (const auto& [row, col] : visited) {
        publish.real_ids.push_back({row, col});
      }
    }
    PublishResult published =
        publish_database(sim, lors, *dvs, source, server_node, publish);
    if (published.failed > 0) {
      throw std::runtime_error("run_experiment: database publication failed");
    }
    return published;
  }

  void make_agent(const ExperimentConfig& config) {
    streaming::ClientAgentConfig agent_config;
    agent_config.cache_bytes = config.agent_cache_bytes;
    agent_config.prefetch = config.prefetch;
    agent_config.prefetch_strategy = config.prefetch_strategy;
    agent_config.eviction = config.eviction;
    agent_config.prefetch_horizon = config.prefetch_horizon;
    agent_config.prefetch_max_inflight = config.prefetch_max_inflight;
    agent_config.prefetch_max_bytes = config.prefetch_max_bytes;
    agent_config.staging = (config.which == Case::kWanWithLanDepot);
    agent_config.lan_depots = lan_depots;
    agent_config.staging_concurrency = config.staging_concurrency;
    agent_config.staging_order = config.staging_order;
    agent_config.pause_staging_on_miss = config.pause_staging_on_miss;
    agent_config.wan_net.streams = config.wan_streams;
    agent_config.retry = config.retry;
    agent_config.max_refetch = config.max_refetch;
    agent_config.staging_lease = config.staging_lease;
    agent_config.lease_refresh = config.lease_refresh;
    agent_config.lease_refresh_interval = config.lease_refresh_interval;
    agent_config.pool = config.pool;
    agent_config.pipeline_decompress = config.pipeline_decompress;
    agent_config.pipeline_inflight = config.pipeline_inflight;
    agent = std::make_unique<streaming::ClientAgent>(sim, net, fabric, lors, *dvs,
                                                     source.lattice(), agent_node,
                                                     agent_config, obs.get());
  }

  void make_clients(const ExperimentConfig& config) {
    for (const sim::NodeId node : client_nodes) {
      clients.push_back(std::make_unique<streaming::Client>(
          sim, net, config.lattice, node, *agent, config.client, obs.get()));
    }
  }

  /// Arms the fault plan with every event shifted to the actual script start
  /// (publication already consumed virtual time).
  void arm_faults(fault::FaultInjector& injector, const fault::FaultPlan& faults,
                  SimTime script_start) {
    fault::FaultPlan plan = faults;
    for (auto& c : plan.crashes) c.at += script_start;
    for (auto& p : plan.partitions) p.at += script_start;
    for (auto& d : plan.degradations) d.at += script_start;
    for (auto& d : plan.drops) d.at += script_start;
    for (auto& c : plan.corruptions) c.at += script_start;
    injector.arm(plan);
  }
};

}  // namespace

ExperimentResult run_experiment(const ExperimentConfig& config) {
  System sys(config, 1);
  const lightfield::SphericalLattice& lattice = sys.source.lattice();

  const CursorScript script =
      config.script.has_value()
          ? *config.script
          : CursorScript::standard(lattice, config.dwell, config.accesses, config.seed);
  PublishResult published = sys.publish(config, {&script});

  sys.make_agent(config);
  sys.make_clients(config);
  streaming::Client& client = *sys.clients.front();
  sim::Simulator& sim = sys.sim;

  // --- Orchestrated run -------------------------------------------------------
  // "As soon as visualization of a dataset begins, aggressive prestaging to
  // the LAN depot is initiated."
  const SimTime script_start = sim.now();
  sys.agent->start_staging();

  fault::FaultInjector injector(sim, sys.net, sys.fabric, sys.obs.get());
  sys.arm_faults(injector, config.faults, script_start);

  // The publisher's repair daemon: every repair_interval, probe the next
  // repair_batch exNodes in the catalog, drop dead replicas, re-replicate
  // short extents, and push the healed exNode back into the DVS so readers
  // stop chasing capabilities on crashed depots.
  std::size_t repair_cursor = 0;
  std::function<void()> repair_sweep = [&] {
    if (published.exnodes.empty()) return;
    auto batch = std::make_shared<std::size_t>(
        std::min(config.repair_batch, published.exnodes.size()));
    for (std::size_t i = 0; i < *batch; ++i) {
      auto& [id, owned] = published.exnodes[repair_cursor++ % published.exnodes.size()];
      lors::RepairOptions options;
      options.target_replicas = config.repair_target_replicas > 0
                                    ? config.repair_target_replicas
                                    : config.publish_replicas;
      options.candidate_depots =
          (config.which == Case::kLanData) ? sys.lan_depots : sys.wan_depots;
      sys.lors.repair_async(sys.server_node, owned, options,
                            [&, batch, id = id](const lors::RepairResult& r) {
                              if (r.status != lors::LorsStatus::kCancelled) {
                                for (auto& [pid, pnode] : published.exnodes) {
                                  if (pid == id) pnode = r.exnode;
                                }
                                if (r.replicas_lost > 0 || r.replicas_added > 0) {
                                  exnode::ExNode copy = r.exnode;
                                  sys.dvs->install(id, std::move(copy));
                                }
                              }
                              if (--*batch == 0) {
                                sim.after(config.repair_interval, repair_sweep);
                              }
                            });
    }
  };
  if (config.repair_interval > 0) {
    sim.after(config.repair_interval, repair_sweep);
  }

  bool done = false;
  std::size_t step_index = 0;
  std::size_t failed_accesses = 0;
  // Each step waits until its view is renderable, then dwells before moving:
  // the orchestrated operator moves at a controlled rate but never abandons
  // a pending view (which keeps the access count at exactly `accesses`).
  std::function<void()> advance = [&] {
    if (step_index >= script.size()) {
      done = true;
      return;
    }
    const CursorStep step = script.steps()[step_index++];
    client.set_view(step.direction, [&, step](bool ok) {
      if (!ok) {
        ++failed_accesses;
        LON_LOG(kWarn, "experiment") << "view request failed; continuing";
      }
      sim.after(step.dwell, advance);
    });
  };
  advance();
  while (!done && sim.step()) {
  }
  const SimTime script_end = sim.now();

  // --- Results ----------------------------------------------------------------
  ExperimentResult result;
  result.accesses = client.accesses();
  result.summary = summarize(result.accesses);
  result.agent_stats = sys.agent->stats();
  result.staged_at_end = sys.agent->stats().staged;
  result.staging_complete = sys.agent->staging_complete();
  result.script_duration = script_end - script_start;
  result.db_compressed_bytes = static_cast<double>(published.compressed_bytes);
  result.db_uncompressed_bytes = static_cast<double>(published.uncompressed_bytes);
  result.compression_ratio =
      result.db_compressed_bytes > 0
          ? result.db_uncompressed_bytes / result.db_compressed_bytes
          : 0.0;
  result.failed_accesses = failed_accesses;
  result.fault_stats = injector.stats();
  result.robustness = collect_robustness(sys.obs->metrics);
  result.obs = std::move(sys.obs);
  return result;
}

MultiClientResult run_multi_client(const MultiClientConfig& mc) {
  if (mc.clients < 1) {
    throw std::invalid_argument("run_multi_client: clients < 1");
  }
  const ExperimentConfig& config = mc.base;
  System sys(config, mc.clients);
  const lightfield::SphericalLattice& lattice = sys.source.lattice();

  std::vector<CursorScript> scripts;
  std::vector<const CursorScript*> script_ptrs;
  scripts.reserve(static_cast<std::size_t>(mc.clients));
  for (int i = 0; i < mc.clients; ++i) {
    scripts.push_back(CursorScript::standard(
        lattice, config.dwell, mc.accesses_per_client,
        mc.client_seed + static_cast<std::uint64_t>(i)));
  }
  for (const CursorScript& s : scripts) script_ptrs.push_back(&s);
  sys.publish(config, script_ptrs);

  sys.make_agent(config);
  sys.make_clients(config);
  sim::Simulator& sim = sys.sim;

  const SimTime script_start = sim.now();
  sys.agent->start_staging();

  fault::FaultInjector injector(sim, sys.net, sys.fabric, sys.obs.get());
  sys.arm_faults(injector, config.faults, script_start);

  // One driver per client: each replays its own script, waiting for every
  // view then dwelling, exactly like the single-client loop. Starts are
  // staggered so the scripts interleave in virtual time.
  struct Driver {
    std::size_t step = 0;
    std::size_t failed = 0;
  };
  std::vector<Driver> drivers(static_cast<std::size_t>(mc.clients));
  int remaining = mc.clients;
  std::vector<std::function<void()>> advance(static_cast<std::size_t>(mc.clients));
  for (int i = 0; i < mc.clients; ++i) {
    const auto ci = static_cast<std::size_t>(i);
    advance[ci] = [&, ci] {
      Driver& d = drivers[ci];
      if (d.step >= scripts[ci].size()) {
        --remaining;
        return;
      }
      const CursorStep step = scripts[ci].steps()[d.step++];
      sys.clients[ci]->set_view(step.direction, [&, ci, step](bool ok) {
        if (!ok) {
          ++drivers[ci].failed;
          LON_LOG(kWarn, "experiment")
              << "client " << ci << " view request failed; continuing";
        }
        sim.after(step.dwell, advance[ci]);
      });
    };
    sim.after(static_cast<SimDuration>(i) * mc.start_stagger, advance[ci]);
  }
  while (remaining > 0 && sim.step()) {
  }
  const SimTime script_end = sim.now();

  MultiClientResult result;
  for (int i = 0; i < mc.clients; ++i) {
    const auto ci = static_cast<std::size_t>(i);
    MultiClientResult::PerClient pc;
    pc.accesses = sys.clients[ci]->accesses();
    pc.summary = summarize(pc.accesses);
    pc.failed_accesses = drivers[ci].failed;
    // Clients are constructed in index order, so client i owns the registry
    // instance labelled inst=i.
    const std::string labels = "component=client,inst=" + std::to_string(i);
    if (const obs::LatencyHistogram* h =
            sys.obs->metrics.find_histogram("session.total_ns", labels)) {
      pc.p50_total_s = h->p50() / 1e9;
      pc.p99_total_s = h->p99() / 1e9;
    }
    result.failed_accesses += pc.failed_accesses;
    result.clients.push_back(std::move(pc));
  }
  result.agent_stats = sys.agent->stats();
  result.staging_complete = sys.agent->staging_complete();
  result.script_duration = script_end - script_start;
  result.fault_stats = injector.stats();
  result.obs = std::move(sys.obs);
  return result;
}

}  // namespace lon::session
