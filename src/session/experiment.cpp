#include "session/experiment.hpp"

#include <stdexcept>

#include "session/scenario.hpp"
#include "session/system.hpp"
#include "util/log.hpp"

namespace lon::session {

const char* to_string(Case c) {
  switch (c) {
    case Case::kLanData:
      return "case1-data-in-lan";
    case Case::kWanStreaming:
      return "case2-data-in-wan";
    case Case::kWanWithLanDepot:
      return "case3-with-lan-depot";
  }
  return "?";
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  System sys(config, 1);
  const lightfield::SphericalLattice& lattice = sys.source.lattice();

  const CursorScript script =
      config.script.has_value()
          ? *config.script
          : CursorScript::standard(lattice, config.dwell, config.accesses, config.seed);
  PublishResult& published = sys.publish(config, {&script});

  sys.make_agent(config);
  sys.make_server_agent(config);
  sys.make_clients(config);
  streaming::Client& client = *sys.clients.front();
  sim::Simulator& sim = sys.sim;

  // --- Orchestrated run -------------------------------------------------------
  // "As soon as visualization of a dataset begins, aggressive prestaging to
  // the LAN depot is initiated."
  const SimTime script_start = sim.now();
  sys.agent->start_staging();

  fault::FaultInjector injector(sim, sys.net, sys.fabric, sys.obs.get());
  sys.arm_faults(injector, config.faults, script_start);
  sys.start_repair(config);

  bool done = false;
  std::size_t step_index = 0;
  std::size_t failed_accesses = 0;
  // Each step waits until its view is renderable, then dwells before moving:
  // the orchestrated operator moves at a controlled rate but never abandons
  // a pending view (which keeps the access count at exactly `accesses`).
  std::function<void()> advance = [&] {
    if (step_index >= script.size()) {
      done = true;
      return;
    }
    const CursorStep step = script.steps()[step_index++];
    client.set_view(step.direction, [&, step](bool ok) {
      if (!ok) {
        ++failed_accesses;
        LON_LOG(kWarn, "experiment") << "view request failed; continuing";
      }
      sim.after(step.dwell, advance);
    });
  };
  advance();
  while (!done && sim.step()) {
  }
  const SimTime script_end = sim.now();

  // --- Results ----------------------------------------------------------------
  ExperimentResult result;
  result.accesses = client.accesses();
  result.summary = summarize(result.accesses);
  result.agent_stats = sys.agent->stats();
  result.staged_at_end = sys.agent->stats().staged;
  result.staging_complete = sys.agent->staging_complete();
  result.script_duration = script_end - script_start;
  result.db_compressed_bytes = static_cast<double>(published.compressed_bytes);
  result.db_uncompressed_bytes = static_cast<double>(published.uncompressed_bytes);
  result.compression_ratio =
      result.db_compressed_bytes > 0
          ? result.db_uncompressed_bytes / result.db_compressed_bytes
          : 0.0;
  result.failed_accesses = failed_accesses;
  result.fault_stats = injector.stats();
  result.robustness = collect_robustness(sys.obs->metrics);
  obs::Registry& metrics = sys.obs->metrics;
  metrics.counter("sim.events_executed", "component=simnet").inc(sim.executed());
  metrics.counter("sim.events_scheduled", "component=simnet").inc(sim.scheduled());
  metrics.counter("sim.events_cancelled", "component=simnet").inc(sim.cancelled());
  metrics.counter("net.reallocs", "component=simnet").inc(sys.net.reallocs());
  metrics.counter("net.realloc_requests", "component=simnet")
      .inc(sys.net.realloc_requests());
  metrics.counter("net.realloc_flows_touched", "component=simnet")
      .inc(sys.net.realloc_flows_touched());
  result.obs = std::move(sys.obs);
  return result;
}

MultiClientResult run_multi_client(const MultiClientConfig& mc) {
  if (mc.clients < 1) {
    throw std::invalid_argument("run_multi_client: clients < 1");
  }
  // A multi-client run is the simplest scenario: N standard seeded walks,
  // evenly staggered. Everything below delegates to the scenario driver.
  Scenario scenario;
  scenario.name = "multi-client";
  scenario.base = mc.base;
  const lightfield::SphericalLattice lattice(mc.base.lattice);
  for (int i = 0; i < mc.clients; ++i) {
    ScenarioClient sc;
    sc.script = CursorScript::standard(
        lattice, mc.base.dwell, mc.accesses_per_client,
        mc.client_seed + static_cast<std::uint64_t>(i));
    sc.start = static_cast<SimDuration>(i) * mc.start_stagger;
    scenario.clients.push_back(std::move(sc));
  }
  ScenarioResult run = run_scenario(scenario);

  MultiClientResult result;
  for (auto& pc : run.clients) {
    MultiClientResult::PerClient out;
    out.accesses = std::move(pc.accesses);
    out.summary = pc.summary;
    out.failed_accesses = pc.failed_accesses;
    out.p50_total_s = pc.p50_total_s;
    out.p99_total_s = pc.p99_total_s;
    result.clients.push_back(std::move(out));
  }
  result.agent_stats = run.agent_stats;
  result.script_duration = run.duration;
  result.failed_accesses = run.failed_accesses;
  result.min_client_delivered = run.min_client_delivered;
  result.staging_complete = run.staging_complete;
  result.fault_stats = run.fault_stats;
  result.sim_events = run.sim_events;
  result.sim_scheduled = run.sim_scheduled;
  result.net_reallocs = run.net_reallocs;
  result.net_realloc_flows_touched = run.net_realloc_flows_touched;
  result.wall_s = run.wall_s;
  result.obs = std::move(run.obs);
  return result;
}

}  // namespace lon::session
