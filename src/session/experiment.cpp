#include "session/experiment.hpp"

#include <memory>
#include <set>
#include <stdexcept>

#include "fault/fault.hpp"
#include "ibp/service.hpp"
#include "lbone/lbone.hpp"
#include "lightfield/procedural.hpp"
#include "lors/lors.hpp"
#include "session/publisher.hpp"
#include "streaming/dvs.hpp"
#include "util/log.hpp"

namespace lon::session {

const char* to_string(Case c) {
  switch (c) {
    case Case::kLanData:
      return "case1-data-in-lan";
    case Case::kWanStreaming:
      return "case2-data-in-wan";
    case Case::kWanWithLanDepot:
      return "case3-with-lan-depot";
  }
  return "?";
}

ExperimentResult run_experiment(const ExperimentConfig& config) {
  // --- System assembly -------------------------------------------------------
  // A private observability context per run: counters start at zero, spans
  // start empty, and concurrent experiments never share state. Tracing is on
  // so every run comes back with its full span tree.
  auto obs = std::make_shared<obs::Context>();
  obs->trace.set_enabled(true);

  sim::Simulator sim;
  sim::Network net(sim, config.net_seed);
  ibp::Fabric fabric(sim, net, obs.get());
  fabric.set_timeouts(config.timeouts);
  lors::Lors lors(sim, net, fabric, 0x10f5, obs.get());

  // LAN: client, client agent and the LAN depots hang off one switch.
  const sim::NodeId lan_switch = net.add_node("lan-switch");
  const sim::NodeId client_node = net.add_node("client");
  const sim::NodeId agent_node = net.add_node("client-agent");
  const sim::LinkConfig lan_link{config.lan_bandwidth_bps, config.lan_latency, 0.0};
  net.add_link(client_node, lan_switch, lan_link);
  net.add_link(agent_node, lan_switch, lan_link);

  std::vector<std::string> lan_depots;
  for (int i = 0; i < config.lan_depot_count; ++i) {
    const std::string name = "lan-" + std::to_string(i);
    const sim::NodeId node = net.add_node(name + "-node");
    net.add_link(node, lan_switch, lan_link);
    ibp::DepotConfig depot;
    depot.capacity_bytes = 16ull << 30;
    depot.max_alloc_bytes = 1ull << 30;
    depot.disk_bytes_per_sec = config.depot_disk_bps;
    depot.rng_seed = 0x1a00 + static_cast<std::uint64_t>(i);
    fabric.add_depot(node, name, depot);
    lan_depots.push_back(name);
  }

  // WAN: a shared trunk to the "California" side; server depots, the DVS
  // server and the (publishing) server node live behind it.
  const sim::NodeId wan_router = net.add_node("wan-router");
  net.add_link(lan_switch, wan_router,
               {config.wan_bandwidth_bps, config.wan_latency, config.wan_jitter});
  const sim::LinkConfig far_lan{1e9, kMillisecond, 0.0};

  std::vector<std::string> wan_depots;
  for (int i = 0; i < config.wan_depot_count; ++i) {
    const std::string name = "ca-" + std::to_string(i);
    const sim::NodeId node = net.add_node(name + "-node");
    net.add_link(node, wan_router, far_lan);
    ibp::DepotConfig depot;
    depot.capacity_bytes = 64ull << 30;
    depot.max_alloc_bytes = 1ull << 30;
    depot.disk_bytes_per_sec = config.depot_disk_bps;
    depot.rng_seed = 0xca00 + static_cast<std::uint64_t>(i);
    fabric.add_depot(node, name, depot);
    wan_depots.push_back(name);
  }
  const sim::NodeId dvs_node = net.add_node("dvs-server");
  net.add_link(dvs_node, wan_router, far_lan);
  const sim::NodeId server_node = net.add_node("server");
  net.add_link(server_node, wan_router, far_lan);

  lbone::Directory lbone(net, fabric, obs.get());
  for (const auto& name : lan_depots) lbone.register_depot(name);
  for (const auto& name : wan_depots) lbone.register_depot(name);

  // --- Light field database ---------------------------------------------------
  lightfield::ProceduralSource source(config.lattice);
  const lightfield::SphericalLattice& lattice = source.lattice();
  streaming::DvsServer dvs(sim, net, dvs_node, lattice, {}, obs.get());

  const CursorScript script =
      CursorScript::standard(lattice, config.dwell, config.accesses, config.seed);

  PublishOptions publish;
  publish.depots =
      (config.which == Case::kLanData) ? lan_depots : wan_depots;
  publish.replicas = config.publish_replicas;
  publish.net.streams = 8;
  publish.all_filler = config.all_filler;
  if (!config.full_content && !config.all_filler) {
    // Real pixels only where the client will decompress them: every view set
    // the script visits.
    std::set<std::pair<int, int>> visited;
    for (const CursorStep& step : script.steps()) {
      const auto id = lattice.view_set_of(step.direction);
      visited.insert({id.row, id.col});
    }
    for (const auto& [row, col] : visited) {
      publish.real_ids.push_back({row, col});
    }
  }
  PublishResult published =
      publish_database(sim, lors, dvs, source, server_node, publish);
  if (published.failed > 0) {
    throw std::runtime_error("run_experiment: database publication failed");
  }

  // --- Client agent and client -------------------------------------------------
  streaming::ClientAgentConfig agent_config;
  agent_config.cache_bytes = config.agent_cache_bytes;
  agent_config.prefetch = config.prefetch;
  agent_config.staging = (config.which == Case::kWanWithLanDepot);
  agent_config.lan_depots = lan_depots;
  agent_config.staging_concurrency = config.staging_concurrency;
  agent_config.staging_order = config.staging_order;
  agent_config.pause_staging_on_miss = config.pause_staging_on_miss;
  agent_config.wan_net.streams = config.wan_streams;
  agent_config.retry = config.retry;
  agent_config.max_refetch = config.max_refetch;
  agent_config.staging_lease = config.staging_lease;
  agent_config.lease_refresh = config.lease_refresh;
  agent_config.lease_refresh_interval = config.lease_refresh_interval;
  streaming::ClientAgent agent(sim, net, fabric, lors, dvs, lattice, agent_node,
                               agent_config, obs.get());

  streaming::Client client(sim, net, config.lattice, client_node, agent, config.client,
                           obs.get());

  // --- Orchestrated run ----------------------------------------------------------
  // "As soon as visualization of a dataset begins, aggressive prestaging to
  // the LAN depot is initiated."
  const SimTime script_start = sim.now();
  agent.start_staging();

  // Fault plan times are authored relative to the script; publication already
  // consumed virtual time, so shift every event to the actual start.
  fault::FaultInjector injector(sim, net, fabric, obs.get());
  {
    fault::FaultPlan plan = config.faults;
    for (auto& c : plan.crashes) c.at += script_start;
    for (auto& p : plan.partitions) p.at += script_start;
    for (auto& d : plan.degradations) d.at += script_start;
    for (auto& d : plan.drops) d.at += script_start;
    for (auto& c : plan.corruptions) c.at += script_start;
    injector.arm(plan);
  }

  // The publisher's repair daemon: every repair_interval, probe the next
  // repair_batch exNodes in the catalog, drop dead replicas, re-replicate
  // short extents, and push the healed exNode back into the DVS so readers
  // stop chasing capabilities on crashed depots.
  std::size_t repair_cursor = 0;
  std::function<void()> repair_sweep = [&] {
    if (published.exnodes.empty()) return;
    auto batch = std::make_shared<std::size_t>(
        std::min(config.repair_batch, published.exnodes.size()));
    for (std::size_t i = 0; i < *batch; ++i) {
      auto& [id, owned] = published.exnodes[repair_cursor++ % published.exnodes.size()];
      lors::RepairOptions options;
      options.target_replicas = config.repair_target_replicas > 0
                                    ? config.repair_target_replicas
                                    : config.publish_replicas;
      options.candidate_depots =
          (config.which == Case::kLanData) ? lan_depots : wan_depots;
      lors.repair_async(server_node, owned, options,
                        [&, batch, id = id](const lors::RepairResult& r) {
                          if (r.status != lors::LorsStatus::kCancelled) {
                            for (auto& [pid, pnode] : published.exnodes) {
                              if (pid == id) pnode = r.exnode;
                            }
                            if (r.replicas_lost > 0 || r.replicas_added > 0) {
                              exnode::ExNode copy = r.exnode;
                              dvs.install(id, std::move(copy));
                            }
                          }
                          if (--*batch == 0) {
                            sim.after(config.repair_interval, repair_sweep);
                          }
                        });
    }
  };
  if (config.repair_interval > 0) {
    sim.after(config.repair_interval, repair_sweep);
  }

  bool done = false;
  std::size_t step_index = 0;
  std::size_t failed_accesses = 0;
  // Each step waits until its view is renderable, then dwells before moving:
  // the orchestrated operator moves at a controlled rate but never abandons
  // a pending view (which keeps the access count at exactly `accesses`).
  std::function<void()> advance = [&] {
    if (step_index >= script.size()) {
      done = true;
      return;
    }
    const CursorStep step = script.steps()[step_index++];
    client.set_view(step.direction, [&, step](bool ok) {
      if (!ok) {
        ++failed_accesses;
        LON_LOG(kWarn, "experiment") << "view request failed; continuing";
      }
      sim.after(step.dwell, advance);
    });
  };
  advance();
  while (!done && sim.step()) {
  }
  const SimTime script_end = sim.now();

  // --- Results ---------------------------------------------------------------------
  ExperimentResult result;
  result.accesses = client.accesses();
  result.summary = summarize(result.accesses);
  result.agent_stats = agent.stats();
  result.staged_at_end = agent.stats().staged;
  result.staging_complete = agent.staging_complete();
  result.script_duration = script_end - script_start;
  result.db_compressed_bytes = static_cast<double>(published.compressed_bytes);
  result.db_uncompressed_bytes = static_cast<double>(published.uncompressed_bytes);
  result.compression_ratio =
      result.db_compressed_bytes > 0
          ? result.db_uncompressed_bytes / result.db_compressed_bytes
          : 0.0;
  result.failed_accesses = failed_accesses;
  result.fault_stats = injector.stats();
  result.robustness = collect_robustness(obs->metrics);
  result.obs = std::move(obs);
  return result;
}

}  // namespace lon::session
