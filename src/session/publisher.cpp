#include "session/publisher.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/log.hpp"
#include "util/rng.hpp"

namespace lon::session {

namespace {

/// Filler payload: incompressible-looking bytes of a realistic size. These
/// objects are staged and transferred but never decompressed, so only the
/// size matters; random bytes keep any accidental decompression an error.
Bytes make_filler(std::uint64_t size, Rng& rng) {
  Bytes data(size);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.next());
  return data;
}

}  // namespace

PublishResult publish_database(sim::Simulator& sim, lors::Lors& lors,
                               streaming::DvsServer& dvs,
                               lightfield::ViewSetSource& source, sim::NodeId server_node,
                               const PublishOptions& options) {
  PublishResult result;
  const auto& lattice = source.lattice();
  const auto all = lattice.all_view_sets();

  std::unordered_set<lightfield::ViewSetId, lightfield::ViewSetIdHash> real_set(
      options.real_ids.begin(), options.real_ids.end());
  const bool all_real = options.real_ids.empty() && !options.all_filler;
  if (options.all_filler && !all.empty()) {
    // Calibrate filler sizes from one genuinely compressed view set.
    real_set.insert(all.front());
  }

  // Pass 1: build the real view sets and measure the mean compressed size.
  std::vector<std::pair<lightfield::ViewSetId, Bytes>> payloads;
  payloads.reserve(all.size());
  std::uint64_t real_bytes = 0;
  std::size_t real_count = 0;
  const std::uint64_t pixel_bytes =
      static_cast<std::uint64_t>(lattice.config().view_set_span) *
      static_cast<std::uint64_t>(lattice.config().view_set_span) *
      lattice.config().view_resolution * lattice.config().view_resolution * 3;

  for (const auto& id : all) {
    if (all_real || real_set.contains(id)) {
      Bytes compressed =
          source.build_compressed(id, options.chunk_bytes, options.pool, options.lfz2);
      real_bytes += compressed.size();
      ++real_count;
      payloads.emplace_back(id, std::move(compressed));
    } else {
      payloads.emplace_back(id, Bytes{});  // filled in pass 2
    }
  }
  if (real_count == 0) {
    // No real content at all: derive a plausible size from the paper's 5-7x
    // ratio regime.
    real_bytes = pixel_bytes / 6;
    real_count = 1;
  }
  const double mean_compressed =
      static_cast<double>(real_bytes) / static_cast<double>(real_count);

  // Pass 2: synthesize filler for the remainder.
  Rng rng(options.filler_seed);
  for (auto& [id, payload] : payloads) {
    if (!payload.empty()) continue;
    const double jitter = 1.0 + options.filler_size_jitter * (2.0 * rng.uniform() - 1.0);
    payload = make_filler(
        static_cast<std::uint64_t>(std::max(1.0, mean_compressed * jitter)), rng);
  }

  // Pass 3: upload everything (LoRS bounds per-call concurrency internally;
  // issue a window of uploads at a time to bound simulator event volume).
  std::size_t next = 0;
  std::size_t outstanding = 0;
  constexpr std::size_t kWindow = 8;
  const std::function<void()> pump = [&]() {
    while (outstanding < kWindow && next < payloads.size()) {
      auto& [id, payload] = payloads[next++];
      ++outstanding;
      result.compressed_bytes += payload.size();
      result.uncompressed_bytes += pixel_bytes;

      lors::UploadOptions upload;
      upload.depots = options.depots;
      upload.replicas = options.replicas;
      upload.block_bytes = options.block_bytes;
      upload.lease = options.lease;
      upload.net = options.net;
      lors.upload_async(server_node, std::move(payload), upload,
                        [&, id = id](const lors::UploadResult& up) {
                          --outstanding;
                          if (up.status == lors::LorsStatus::kOk) {
                            exnode::ExNode node = up.exnode;
                            node.metadata()["viewset"] = id.key();
                            result.exnodes.emplace_back(id, node);
                            dvs.install(id, std::move(node));
                            ++result.published;
                          } else {
                            ++result.failed;
                            LON_LOG(kWarn, "publisher")
                                << "upload failed for " << id.key() << ": "
                                << lors::to_string(up.status);
                          }
                          pump();
                        });
    }
  };
  pump();
  sim.run();

  result.real = real_count;
  result.mean_compressed = mean_compressed;
  return result;
}

}  // namespace lon::session
