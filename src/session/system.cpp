#include "session/system.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

#include "ibp/service.hpp"

namespace lon::session {

System::System(const ExperimentConfig& config, int client_count)
    : obs(std::make_shared<obs::Context>()),
      net(sim, config.net_seed),
      fabric(sim, net, obs.get()),
      lors(sim, net, fabric, 0x10f5, obs.get()),
      source(config.lattice) {
  // A private observability context per run: counters start at zero, spans
  // start empty, and concurrent experiments never share state. Tracing is
  // on so every run comes back with its full span tree.
  obs->trace.set_enabled(true);
  fabric.set_timeouts(config.timeouts);
  net.set_full_resolve(config.full_network_resolve);

  // LAN: client(s), client agent and the LAN depots hang off one switch.
  lan_switch = net.add_node("lan-switch");
  const sim::LinkConfig lan_link{config.lan_bandwidth_bps, config.lan_latency, 0.0};
  for (int i = 0; i < client_count; ++i) {
    const std::string name =
        client_count == 1 ? "client" : "client-" + std::to_string(i);
    const sim::NodeId node = net.add_node(name);
    net.add_link(node, lan_switch, lan_link);
    client_nodes.push_back(node);
  }
  agent_node = net.add_node("client-agent");
  net.add_link(agent_node, lan_switch, lan_link);

  for (int i = 0; i < config.lan_depot_count; ++i) {
    const std::string name = "lan-" + std::to_string(i);
    const sim::NodeId node = net.add_node(name + "-node");
    net.add_link(node, lan_switch, lan_link);
    ibp::DepotConfig depot;
    depot.capacity_bytes = 16ull << 30;
    depot.max_alloc_bytes = 1ull << 30;
    depot.disk_bytes_per_sec = config.depot_disk_bps;
    depot.rng_seed = 0x1a00 + static_cast<std::uint64_t>(i);
    fabric.add_depot(node, name, depot);
    lan_depots.push_back(name);
  }

  // WAN: a shared trunk to the "California" side; server depots, the DVS
  // server and the (publishing) server node live behind it.
  wan_router = net.add_node("wan-router");
  net.add_link(lan_switch, wan_router,
               {config.wan_bandwidth_bps, config.wan_latency, config.wan_jitter});
  const sim::LinkConfig far_lan{1e9, kMillisecond, 0.0};

  for (int i = 0; i < config.wan_depot_count; ++i) {
    const std::string name = "ca-" + std::to_string(i);
    const sim::NodeId node = net.add_node(name + "-node");
    net.add_link(node, wan_router, far_lan);
    ibp::DepotConfig depot;
    depot.capacity_bytes = 64ull << 30;
    depot.max_alloc_bytes = 1ull << 30;
    depot.disk_bytes_per_sec = config.depot_disk_bps;
    depot.rng_seed = 0xca00 + static_cast<std::uint64_t>(i);
    fabric.add_depot(node, name, depot);
    wan_depots.push_back(name);
  }
  dvs_node = net.add_node("dvs-server");
  net.add_link(dvs_node, wan_router, far_lan);
  server_node = net.add_node("server");
  net.add_link(server_node, wan_router, far_lan);

  lbone = std::make_unique<lbone::Directory>(net, fabric, obs.get());
  for (const auto& name : lan_depots) lbone->register_depot(name);
  for (const auto& name : wan_depots) lbone->register_depot(name);

  streaming::DvsConfig dvs_config;
  dvs_config.shards = config.dvs_shards;
  dvs_config.shard_service = config.dvs_shard_service;
  dvs = std::make_unique<streaming::DvsServer>(sim, net, dvs_node, source.lattice(),
                                               dvs_config, obs.get());

  // Extra co-sited agent nodes last, so the historical node-id assignment —
  // and with it every seeded single-agent run — stays bit-identical.
  for (int i = 1; i < config.site_agents; ++i) {
    const sim::NodeId node = net.add_node("client-agent-" + std::to_string(i));
    net.add_link(node, lan_switch, lan_link);
    agent_nodes.push_back(node);
  }
}

PublishResult& System::publish(const ExperimentConfig& config,
                               const std::vector<const CursorScript*>& scripts) {
  PublishOptions publish;
  publish.depots = (config.which == Case::kLanData) ? lan_depots : wan_depots;
  publish.replicas = config.publish_replicas;
  publish.net.streams = 8;
  publish.all_filler = config.all_filler;
  publish.chunk_bytes = config.publish_chunk_bytes;
  publish.pool = config.pool;
  if (!config.full_content && !config.all_filler) {
    std::set<std::pair<int, int>> visited;
    for (const CursorScript* script : scripts) {
      for (const CursorStep& step : script->steps()) {
        const auto id = source.lattice().view_set_of(step.direction);
        visited.insert({id.row, id.col});
      }
    }
    for (const auto& [row, col] : visited) {
      publish.real_ids.push_back({row, col});
      visited_.push_back({row, col});
    }
  }
  published = publish_database(sim, lors, *dvs, source, server_node, publish);
  if (published.failed > 0) {
    throw std::runtime_error("run_experiment: database publication failed");
  }
  ensure_lod(config);
  return published;
}

void System::ensure_lod(const ExperimentConfig& config) {
  if (!lod_tiers.empty()) return;
  // Union of the streaming ladder and the legacy single-tier spelling,
  // finest first, duplicates and non-coarse resolutions dropped.
  std::vector<std::size_t> resolutions = config.lod_resolutions;
  if (config.lod_resolution > 0) resolutions.push_back(config.lod_resolution);
  std::sort(resolutions.begin(), resolutions.end(), std::greater<std::size_t>());
  resolutions.erase(std::unique(resolutions.begin(), resolutions.end()),
                    resolutions.end());
  std::erase_if(resolutions, [&](std::size_t res) {
    return res == 0 || res >= config.lattice.view_resolution;
  });
  if (resolutions.empty()) return;

  // Same lattice geometry (identical view-set grid) at lower view
  // resolutions: every full-resolution ViewSetId addresses the matching
  // coarse set, and each tier gets its own DVS namespace.
  multidb = lightfield::MultiDatabase::lod_ladder(config.lattice, resolutions);
  for (std::size_t res : resolutions) {
    LodTier tier;
    tier.resolution = res;
    lightfield::LatticeConfig coarse = config.lattice;
    coarse.view_resolution = res;
    tier.source = std::make_unique<lightfield::ProceduralSource>(coarse);
    tier.dvs = std::make_unique<streaming::DvsServer>(
        sim, net, dvs_node, tier.source->lattice(), streaming::DvsConfig{}, obs.get());

    PublishOptions publish;
    publish.depots = (config.which == Case::kLanData) ? lan_depots : wan_depots;
    publish.replicas = config.publish_replicas;
    publish.net.streams = 8;
    publish.all_filler = config.all_filler;
    publish.chunk_bytes = config.publish_chunk_bytes;
    publish.pool = config.pool;
    if (!config.full_content && !config.all_filler) publish.real_ids = visited_;
    const PublishResult coarse_published =
        publish_database(sim, lors, *tier.dvs, *tier.source, server_node, publish);
    if (coarse_published.failed > 0) {
      throw std::runtime_error("run_experiment: coarse-tier publication failed");
    }
    lod_tiers.push_back(std::move(tier));
  }
}

void System::make_agent(const ExperimentConfig& config) {
  streaming::ClientAgentConfig agent_config;
  agent_config.cache_bytes = config.agent_cache_bytes;
  agent_config.prefetch = config.prefetch;
  agent_config.prefetch_strategy = config.prefetch_strategy;
  agent_config.eviction = config.eviction;
  agent_config.prefetch_horizon = config.prefetch_horizon;
  agent_config.prefetch_max_inflight = config.prefetch_max_inflight;
  agent_config.prefetch_max_bytes = config.prefetch_max_bytes;
  agent_config.staging = (config.which == Case::kWanWithLanDepot);
  agent_config.lan_depots = lan_depots;
  agent_config.staging_concurrency = config.staging_concurrency;
  agent_config.staging_order = config.staging_order;
  agent_config.pause_staging_on_miss = config.pause_staging_on_miss;
  agent_config.wan_net.streams = config.wan_streams;
  agent_config.retry = config.retry;
  agent_config.max_refetch = config.max_refetch;
  agent_config.staging_lease = config.staging_lease;
  agent_config.lease_refresh = config.lease_refresh;
  agent_config.lease_refresh_interval = config.lease_refresh_interval;
  agent_config.pool = config.pool;
  agent_config.pipeline_decompress = config.pipeline_decompress;
  agent_config.pipeline_inflight = config.pipeline_inflight;
  agent_config.admission = config.admission;
  agent_config.deadline = config.interactivity_deadline;
  agent_config.degrade = config.degrade;
  agent_config.degrade_after_misses = config.degrade_after_misses;
  agent_config.upgrade_after_hits = config.upgrade_after_hits;
  for (const auto& tier : lod_tiers) {
    agent_config.lod_tiers.push_back({tier.dvs.get(), tier.resolution});
  }
  agent_config.lod_streaming = config.lod_streaming;
  agent_config.lod_refine = config.lod_refine;
  agent_config.latency = config.fetch_latency;
  agent_config.hot_report_threshold = config.hot_report_threshold;
  if (config.site_cache) {
    streaming::SiteCacheConfig site_config;
    site_config.capacity_bytes = config.site_cache_bytes;
    site_cache = std::make_unique<streaming::SiteCache>(sim, site_config, obs.get());
    agent_config.site_cache = site_cache.get();
  }
  const int count = std::max(1, config.site_agents);
  agents.clear();
  for (int i = 0; i < count; ++i) {
    const sim::NodeId node =
        i == 0 ? agent_node : agent_nodes[static_cast<std::size_t>(i) - 1];
    agents.push_back(std::make_unique<streaming::ClientAgent>(
        sim, net, fabric, lors, *dvs, source.lattice(), node, agent_config,
        obs.get()));
  }
  agent = agents.front().get();
}

void System::make_clients(const ExperimentConfig& config) {
  for (std::size_t i = 0; i < client_nodes.size(); ++i) {
    clients.push_back(std::make_unique<streaming::Client>(
        sim, net, config.lattice, client_nodes[i], *agents[i % agents.size()],
        config.client, obs.get()));
  }
}

void System::start_staging() {
  for (auto& a : agents) a->start_staging();
}

bool System::staging_complete() const {
  for (const auto& a : agents) {
    if (!a->staging_complete()) return false;
  }
  return true;
}

streaming::ClientAgent::Stats System::agent_stats() const {
  streaming::ClientAgent::Stats total;
  for (const auto& a : agents) {
    const auto& s = a->stats();
    total.requests += s.requests;
    total.hits += s.hits;
    total.lan_accesses += s.lan_accesses;
    total.wan_accesses += s.wan_accesses;
    total.prefetches += s.prefetches;
    total.staged += s.staged;
    total.staging_failures += s.staging_failures;
    total.refetches += s.refetches;
    total.invalidations += s.invalidations;
    total.restaged += s.restaged;
    total.lease_refreshes += s.lease_refreshes;
    total.pipelined += s.pipelined;
    total.predictions += s.predictions;
    total.prefetch_useful += s.prefetch_useful;
    total.pipeline_aborts += s.pipeline_aborts;
    total.pollution_evictions += s.pollution_evictions;
    total.rejected_prefetch += s.rejected_prefetch;
    total.demand_shed += s.demand_shed;
    total.shed_queue_full += s.shed_queue_full;
    total.shed_no_tokens += s.shed_no_tokens;
    total.shed_deadline += s.shed_deadline;
    total.downgrades += s.downgrades;
    total.upgrades += s.upgrades;
    total.degrade_lan_only += s.degrade_lan_only;
    total.degrade_lod += s.degrade_lod;
    total.degrade_demand_only += s.degrade_demand_only;
    total.hot_reports += s.hot_reports;
    total.lod_coarse_serves += s.lod_coarse_serves;
    total.lod_refinements += s.lod_refinements;
    total.lod_refined += s.lod_refined;
    total.payload_copy_bytes += s.payload_copy_bytes;
    total.restage_coalesced += s.restage_coalesced;
    total.site_hits += s.site_hits;
    total.site_adopted += s.site_adopted;
    total.stage_wan_bytes += s.stage_wan_bytes;
    total.demand_wan_active += s.demand_wan_active;
  }
  return total;
}

void System::make_server_agent(const ExperimentConfig& config) {
  if (!config.server_agent) return;
  streaming::ServerAgentConfig sa;
  sa.depots = (config.which == Case::kLanData) ? lan_depots : wan_depots;
  sa.replicas = config.publish_replicas;
  sa.net.streams = 8;
  sa.chunk_bytes = config.publish_chunk_bytes;
  sa.pool = config.pool;
  sa.admission = config.server_admission;
  sa.deadline = config.interactivity_deadline;
  sa.augment_threshold = config.augment_threshold;
  sa.augment_cooldown = config.augment_cooldown;
  // Fan hot view sets toward the client site: augmented replicas land on
  // the LAN depots, so the flash crowd's next round is served locally.
  sa.augment_depots = lan_depots;
  server_agent = std::make_unique<streaming::ServerAgent>(
      sim, net, lors, *dvs, server_node,
      std::shared_ptr<lightfield::ViewSetSource>(
          std::shared_ptr<lightfield::ViewSetSource>{}, &source),
      sa, obs.get());
  dvs->register_server_agent(server_agent.get());
  // Every coarse tier gets its own generator over the tier's source, so a
  // coarse miss can be rendered on demand exactly like a full-resolution one.
  for (auto& tier : lod_tiers) {
    tier.agent = std::make_unique<streaming::ServerAgent>(
        sim, net, lors, *tier.dvs, server_node,
        std::shared_ptr<lightfield::ViewSetSource>(
            std::shared_ptr<lightfield::ViewSetSource>{}, tier.source.get()),
        sa, obs.get());
    tier.dvs->register_server_agent(tier.agent.get());
  }
}

void System::start_repair(const ExperimentConfig& config) {
  if (config.repair_interval <= 0) return;
  repair_interval_ = config.repair_interval;
  repair_batch_ = config.repair_batch;
  repair_target_replicas_ = config.repair_target_replicas > 0
                                ? config.repair_target_replicas
                                : config.publish_replicas;
  repair_depots_ = (config.which == Case::kLanData) ? lan_depots : wan_depots;
  repair_sweep_ = [this] {
    if (published.exnodes.empty()) return;
    auto batch = std::make_shared<std::size_t>(
        std::min(repair_batch_, published.exnodes.size()));
    for (std::size_t i = 0; i < *batch; ++i) {
      auto& [id, owned] = published.exnodes[repair_cursor_++ % published.exnodes.size()];
      lors::RepairOptions options;
      options.target_replicas = repair_target_replicas_;
      options.candidate_depots = repair_depots_;
      lors.repair_async(server_node, owned, options,
                        [this, batch, id = id](const lors::RepairResult& r) {
                          if (r.status != lors::LorsStatus::kCancelled) {
                            for (auto& [pid, pnode] : published.exnodes) {
                              if (pid == id) pnode = r.exnode;
                            }
                            if (r.replicas_lost > 0 || r.replicas_added > 0) {
                              exnode::ExNode copy = r.exnode;
                              dvs->install(id, std::move(copy));
                            }
                          }
                          if (--*batch == 0) {
                            sim.after(repair_interval_, repair_sweep_);
                          }
                        });
    }
  };
  sim.after(repair_interval_, repair_sweep_);
}

void System::arm_faults(fault::FaultInjector& injector, const fault::FaultPlan& faults,
                        SimTime script_start) {
  fault::FaultPlan plan = faults;
  for (auto& c : plan.crashes) c.at += script_start;
  for (auto& p : plan.partitions) p.at += script_start;
  for (auto& d : plan.degradations) d.at += script_start;
  for (auto& d : plan.drops) d.at += script_start;
  for (auto& c : plan.corruptions) c.at += script_start;
  injector.arm(plan);
}

}  // namespace lon::session
