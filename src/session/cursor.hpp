// Orchestrated cursor movement.
//
// "Our tests in all three cases ... are run with the same sequence of user
// input, i.e. movement of cursor. We enforce this by using a standard list
// of cursor movements to orchestrate each test. ... cursor movements by the
// user generate a sequence of 58 view set requests."
//
// A CursorScript is an explicit, reproducible version of that standard list:
// a sequence of view directions with dwell times. The standard script is a
// seeded walk across neighbouring view sets (with occasional revisits, which
// exercise the agent cache) tuned to produce exactly 58 view-set requests
// from a client that keeps only its current view set.
#pragma once

#include <cstdint>
#include <vector>

#include "lightfield/lattice.hpp"
#include "util/time.hpp"

namespace lon::session {

struct CursorStep {
  Spherical direction;   ///< where the user looks
  SimDuration dwell = 0; ///< time spent at this view before the next step
};

class CursorScript {
 public:
  CursorScript() = default;
  explicit CursorScript(std::vector<CursorStep> steps) : steps_(std::move(steps)) {}

  [[nodiscard]] const std::vector<CursorStep>& steps() const { return steps_; }
  [[nodiscard]] std::size_t size() const { return steps_.size(); }

  /// Number of view-set requests this script generates for a client that
  /// holds only its current view set (transitions between view sets + 1).
  [[nodiscard]] std::size_t expected_accesses(
      const lightfield::SphericalLattice& lattice) const;

  /// The standard orchestrated walk: starts near the equator and wanders
  /// across neighbouring view sets, revisiting some, until it has generated
  /// exactly `accesses` view-set requests (58 in the paper). `dwell` is the
  /// time between steps — the user's movement rate, i.e. the knob behind the
  /// Quality Guaranteed Rate discussion. Deterministic per seed.
  static CursorScript standard(const lightfield::SphericalLattice& lattice,
                               SimDuration dwell, std::size_t accesses = 58,
                               std::uint64_t seed = 2003);

 private:
  std::vector<CursorStep> steps_;
};

}  // namespace lon::session
