// Orchestrated cursor movement.
//
// "Our tests in all three cases ... are run with the same sequence of user
// input, i.e. movement of cursor. We enforce this by using a standard list
// of cursor movements to orchestrate each test. ... cursor movements by the
// user generate a sequence of 58 view set requests."
//
// A CursorScript is an explicit, reproducible version of that standard list:
// a sequence of view directions with dwell times. The standard script is a
// seeded walk across neighbouring view sets (with occasional revisits, which
// exercise the agent cache) tuned to produce exactly 58 view-set requests
// from a client that keeps only its current view set.
#pragma once

#include <cstdint>
#include <vector>

#include "lightfield/lattice.hpp"
#include "util/time.hpp"

namespace lon::session {

struct CursorStep {
  Spherical direction;   ///< where the user looks
  SimDuration dwell = 0; ///< time spent at this view before the next step
};

class CursorScript {
 public:
  CursorScript() = default;
  explicit CursorScript(std::vector<CursorStep> steps) : steps_(std::move(steps)) {}

  [[nodiscard]] const std::vector<CursorStep>& steps() const { return steps_; }
  [[nodiscard]] std::size_t size() const { return steps_.size(); }

  /// Number of view-set requests this script generates for a client that
  /// holds only its current view set (transitions between view sets + 1).
  [[nodiscard]] std::size_t expected_accesses(
      const lightfield::SphericalLattice& lattice) const;

  /// The standard orchestrated walk: starts near the equator and wanders
  /// across neighbouring view sets, revisiting some, until it has generated
  /// exactly `accesses` view-set requests (58 in the paper). `dwell` is the
  /// time between steps — the user's movement rate, i.e. the knob behind the
  /// Quality Guaranteed Rate discussion. Deterministic per seed.
  static CursorScript standard(const lightfield::SphericalLattice& lattice,
                               SimDuration dwell, std::size_t accesses = 58,
                               std::uint64_t seed = 2003);

  // Scripted walks for the policy bench: each isolates one kinematic regime
  // the prefetch policies must handle. All are deterministic (no rng).

  /// Constant-rate pan in +phi along one view-set row: `steps_per_set`
  /// samples inside each of `sets` view sets. The regime trajectory
  /// extrapolation is built for. `row` < 0 = the middle latitude band.
  static CursorScript smooth_pan(const lightfield::SphericalLattice& lattice,
                                 SimDuration dwell, std::size_t sets = 16,
                                 int steps_per_set = 4, int row = -1);

  /// Pans `sets_out` view sets in +phi, then retraces the same path back —
  /// the motion model must flip its velocity estimate at the turn.
  static CursorScript reversal(const lightfield::SphericalLattice& lattice,
                               SimDuration dwell, std::size_t sets_out = 8,
                               int steps_per_set = 4, int row = -1);

  /// Figure-12-style browse: pan `segment` sets, teleport half the sphere
  /// away in phi, pan again — `jumps` times. Exercises the model reset; a
  /// policy that keeps extrapolating across the jump wastes its prefetches.
  static CursorScript teleport(const lightfield::SphericalLattice& lattice,
                               SimDuration dwell, std::size_t segment = 5,
                               int steps_per_set = 4, std::size_t jumps = 3,
                               int row = -1);

 private:
  std::vector<CursorStep> steps_;
};

}  // namespace lon::session
