#include "lors/lors.hpp"

#include <algorithm>
#include <memory>
#include <set>
#include <span>

#include "util/checksum.hpp"
#include "util/log.hpp"

namespace lon::lors {

SimDuration RetryPolicy::backoff_for(int round, Rng& rng) const {
  double backoff = static_cast<double>(base_backoff);
  for (int i = 1; i < round; ++i) backoff *= multiplier;
  backoff = std::min(backoff, static_cast<double>(max_backoff));
  if (jitter_frac > 0.0) {
    backoff *= rng.uniform(1.0 - jitter_frac, 1.0 + jitter_frac);
  }
  return std::max<SimDuration>(1, static_cast<SimDuration>(backoff));
}

const LorsStats& Lors::stats() const {
  stats_view_.retries = metrics_.retries.value();
  stats_view_.failovers = metrics_.failovers.value();
  stats_view_.corruption_detected = metrics_.corruption_detected.value();
  stats_view_.repairs_run = metrics_.repairs_run.value();
  stats_view_.replicas_repaired = metrics_.replicas_repaired.value();
  stats_view_.replicas_lost = metrics_.replicas_lost.value();
  return stats_view_;
}

const char* to_string(LorsStatus status) {
  switch (status) {
    case LorsStatus::kOk:
      return "ok";
    case LorsStatus::kPartial:
      return "partial";
    case LorsStatus::kNoDepots:
      return "no-depots";
    case LorsStatus::kAllocFailed:
      return "alloc-failed";
    case LorsStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

// --- upload ------------------------------------------------------------------

namespace {

struct UploadState {
  sim::NodeId client = 0;
  Bytes data;
  UploadOptions options;
  Lors::UploadCallback on_done;

  std::size_t block_count = 0;
  std::size_t next_block = 0;   // next block not yet launched
  std::size_t outstanding = 0;  // launched but unfinished (block, replica) jobs
  std::size_t failures = 0;
  exnode::ExNode exnode;
  ibp::Fabric* fabric = nullptr;
  sim::Simulator* sim = nullptr;
  obs::Tracer* trace = nullptr;
  obs::SpanId span = 0;
};

void upload_launch(const std::shared_ptr<UploadState>& st);

void upload_block_replica(const std::shared_ptr<UploadState>& st, std::size_t block,
                          int replica) {
  const auto& opts = st->options;
  const std::uint64_t offset = block * opts.block_bytes;
  const std::uint64_t length =
      std::min<std::uint64_t>(opts.block_bytes, st->data.size() - offset);
  // Replicas of one block land on distinct depots by rotating the stripe.
  const std::size_t depot_index = (block + static_cast<std::size_t>(replica)) %
                                  opts.depots.size();
  const std::string& depot = opts.depots[depot_index];

  ibp::AllocRequest alloc;
  alloc.size = length;
  alloc.lease = opts.lease;
  alloc.type = opts.alloc_type;

  st->fabric->allocate_async(
      st->client, depot, alloc,
      [st, block, offset, length](ibp::IbpStatus status, const ibp::CapabilitySet& caps) {
        if (status != ibp::IbpStatus::kOk) {
          LON_LOG(kDebug, "lors") << "upload allocate failed: " << ibp::to_string(status);
          ++st->failures;
          --st->outstanding;
          upload_launch(st);
          return;
        }
        // Server-bound staging copy: store_async takes ownership of the block
        // it sends, so striping the source object means one slice per block.
        // This is upload-side cost, not demand-path cost, but it is a real
        // payload pass — account it on the global copy meter.
        Bytes chunk(st->data.begin() + static_cast<long>(offset),
                    st->data.begin() + static_cast<long>(offset + length));
        util::account_payload_copy(length);
        st->fabric->store_async(
            st->client, caps.write, 0, std::move(chunk), st->options.net,
            [st, block, offset, caps](ibp::IbpStatus store_status) {
              if (store_status != ibp::IbpStatus::kOk) {
                ++st->failures;
              } else {
                exnode::Replica rep;
                rep.read = caps.read;
                rep.manage = caps.manage;
                rep.alloc_offset = 0;
                st->exnode.add_replica(offset, std::move(rep));
              }
              --st->outstanding;
              upload_launch(st);
            });
      });
}

void upload_launch(const std::shared_ptr<UploadState>& st) {
  const auto& opts = st->options;
  const std::size_t total_jobs = st->block_count * static_cast<std::size_t>(opts.replicas);
  while (st->next_block < total_jobs &&
         st->outstanding < static_cast<std::size_t>(opts.max_concurrent)) {
    const std::size_t job = st->next_block++;
    ++st->outstanding;
    upload_block_replica(st, job / opts.replicas, static_cast<int>(job % opts.replicas));
  }
  if (st->outstanding == 0 && st->next_block >= total_jobs && st->on_done) {
    UploadResult result;
    result.exnode = std::move(st->exnode);
    if (st->failures == 0 && result.exnode.complete()) {
      result.status = LorsStatus::kOk;
    } else if (result.exnode.complete()) {
      // Every block has at least one replica even though some copies failed.
      result.status = LorsStatus::kOk;
    } else {
      result.status = LorsStatus::kAllocFailed;
    }
    st->trace->arg(st->span, "status", to_string(result.status));
    st->trace->end(st->span, st->sim->now());
    auto cb = std::move(st->on_done);
    st->on_done = nullptr;
    cb(result);
  }
}

}  // namespace

void Lors::upload_async(sim::NodeId client, Bytes data, const UploadOptions& options,
                        UploadCallback on_done) {
  if (options.depots.empty() ||
      static_cast<std::size_t>(options.replicas) > options.depots.size() ||
      options.replicas < 1 || options.block_bytes == 0 || data.empty()) {
    sim_.after(0, [cb = std::move(on_done)] {
      UploadResult r;
      r.status = LorsStatus::kNoDepots;
      cb(r);
    });
    return;
  }
  auto st = std::make_shared<UploadState>();
  st->client = client;
  st->data = std::move(data);
  st->options = options;
  st->on_done = std::move(on_done);
  st->block_count = (st->data.size() + options.block_bytes - 1) / options.block_bytes;
  st->exnode.set_length(st->data.size());
  for (std::size_t b = 0; b < st->block_count; ++b) {
    exnode::Extent extent;
    extent.offset = b * options.block_bytes;
    extent.length = std::min<std::uint64_t>(options.block_bytes,
                                            st->data.size() - extent.offset);
    // Checksum at the source, before any byte crosses the network: the only
    // place the uploader provably holds the true bytes.
    extent.checksum = crc32(std::span(st->data).subspan(extent.offset, extent.length));
    st->exnode.add_extent(std::move(extent));
  }
  st->fabric = &fabric_;
  st->sim = &sim_;
  st->trace = &obs_.trace;
  st->span = obs_.trace.begin("lors.upload", sim_.now());
  obs_.trace.arg(st->span, "bytes", st->data.size());
  obs_.trace.arg(st->span, "blocks", st->block_count);
  upload_launch(st);
}

// --- download ----------------------------------------------------------------

namespace {

struct DownloadState {
  sim::NodeId client = 0;
  exnode::ExNode node;
  DownloadOptions options;
  Lors::DownloadCallback on_done;

  /// Pooled result slab. Extents land in here scatter-gather (the fabric's
  /// destination-buffer load writes each block at its final offset), so the
  /// assembled object is never copied again after the landing pass.
  std::shared_ptr<Bytes> data;
  std::uint64_t copied = 0;  ///< payload bytes landed (incl. re-fetched blocks)
  std::size_t next_extent = 0;
  std::size_t outstanding = 0;
  std::size_t failed = 0;
  std::size_t failovers = 0;
  std::size_t corrupt = 0;
  std::size_t retries = 0;
  ibp::Fabric* fabric = nullptr;
  sim::Network* net = nullptr;
  sim::Simulator* sim = nullptr;
  Rng* rng = nullptr;
  obs::Counter* retries_metric = nullptr;
  obs::Counter* failovers_metric = nullptr;
  obs::Counter* corruption_metric = nullptr;
  obs::Tracer* trace = nullptr;
  obs::SpanId span = 0;

  /// Blocks that landed this virtual instant and await batched verification
  /// on the pool. One zero-delay barrier event is in flight per batch.
  struct ArrivedBlock {
    std::size_t extent_index = 0;
    std::shared_ptr<std::vector<std::size_t>> order;
    std::size_t attempt = 0;
    int round = 1;
    std::size_t received = 0;  ///< bytes the fabric landed in the slab
    bool ok = false;
  };
  std::vector<ArrivedBlock> verify_batch;
  bool verify_scheduled = false;
};

void download_launch(const std::shared_ptr<DownloadState>& st);
void download_extent_try(const std::shared_ptr<DownloadState>& st, std::size_t extent_index,
                         std::shared_ptr<std::vector<std::size_t>> order, std::size_t attempt,
                         int round);

void download_stripe_done(const std::shared_ptr<DownloadState>& st,
                          const exnode::Extent& ext) {
  --st->outstanding;
  if (st->options.on_stripe) {
    st->options.on_stripe(StripeEvent{ext.offset, ext.length, st->data.get(), st->data});
  }
}

/// Drains the batch of same-instant arrivals: checksums run across the pool
/// (each block verified in place over its disjoint slab region — nothing is
/// copied), then outcomes are handled on the simulator thread in ascending
/// extent order. The barrier fires via after(0), so no virtual time passes
/// and the serial path's behaviour — bytes, counters, failovers, completion
/// time — is reproduced exactly.
void download_verify_batch(const std::shared_ptr<DownloadState>& st) {
  st->verify_scheduled = false;
  auto batch = std::move(st->verify_batch);
  st->verify_batch.clear();
  if (batch.empty()) return;
  std::sort(batch.begin(), batch.end(),
            [](const DownloadState::ArrivedBlock& a, const DownloadState::ArrivedBlock& b) {
              return a.extent_index < b.extent_index;
            });
  st->options.pool->parallel_for(0, batch.size(), [&](std::size_t i) {
    DownloadState::ArrivedBlock& block = batch[i];
    const exnode::Extent& ext = st->node.extents()[block.extent_index];
    block.ok = block.received == ext.length &&
               (!ext.checksum.has_value() ||
                crc32(std::span<const std::uint8_t>(*st->data)
                          .subspan(ext.offset, ext.length)) == *ext.checksum);
  });
  for (auto& block : batch) {
    const exnode::Extent& ext = st->node.extents()[block.extent_index];
    if (!block.ok) {
      ++st->corrupt;
      st->corruption_metric->inc();
      st->trace->instant("lors.corruption", st->sim->now(), st->span);
      LON_LOG(kDebug, "lors") << "checksum mismatch on extent " << ext.offset
                              << ", failing over";
      download_extent_try(st, block.extent_index, block.order, block.attempt + 1,
                          block.round);
      continue;
    }
    download_stripe_done(st, ext);
  }
  download_launch(st);
}

/// Replica preference: exNode order is meaningful (staged replicas are
/// placed first), but among equals the closest depot wins.
std::vector<std::size_t> replica_order(const DownloadState& st, const exnode::Extent& extent) {
  std::vector<std::size_t> order(extent.replicas.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto node_of = [&](std::size_t i) {
      return st.fabric->depot_node(extent.replicas[i].read.depot);
    };
    SimDuration la = std::numeric_limits<SimDuration>::max();
    SimDuration lb = la;
    if (st.net->reachable(st.client, node_of(a))) la = st.net->path_latency(st.client, node_of(a));
    if (st.net->reachable(st.client, node_of(b))) lb = st.net->path_latency(st.client, node_of(b));
    return la < lb;
  });
  return order;
}

void download_extent_try(const std::shared_ptr<DownloadState>& st, std::size_t extent_index,
                         std::shared_ptr<std::vector<std::size_t>> order, std::size_t attempt,
                         int round) {
  const exnode::Extent& extent = st->node.extents()[extent_index];
  if (attempt >= order->size()) {
    // This round exhausted every replica. Back off and go again if the
    // policy allows — a transient partition or depot restart may have
    // cleared by then — otherwise the extent is lost for this download.
    if (!order->empty() && round < st->options.retry.max_attempts) {
      ++st->retries;
      st->retries_metric->inc();
      st->trace->instant("lors.retry", st->sim->now(), st->span);
      const SimDuration backoff = st->options.retry.backoff_for(round, *st->rng);
      st->sim->after(backoff, [st, extent_index, round] {
        // Reachability may have changed during the backoff: re-rank.
        auto fresh = std::make_shared<std::vector<std::size_t>>(
            replica_order(*st, st->node.extents()[extent_index]));
        download_extent_try(st, extent_index, fresh, 0, round + 1);
      });
      return;
    }
    // A corrupt or short attempt may have landed bytes in the slab before
    // verification rejected it; the delivery contract is that a failed
    // extent reads as zeros, never as rejected bytes.
    if (st->data != nullptr && extent.offset + extent.length <= st->data->size()) {
      std::fill(st->data->begin() + static_cast<long>(extent.offset),
                st->data->begin() + static_cast<long>(extent.offset + extent.length),
                std::uint8_t{0});
    }
    ++st->failed;
    --st->outstanding;
    download_launch(st);
    return;
  }
  if (attempt > 0) {
    ++st->failovers;
    st->failovers_metric->inc();
    st->trace->instant("lors.failover", st->sim->now(), st->span);
  }
  const exnode::Replica& replica = extent.replicas[(*order)[attempt]];
  // One span per block-fetch attempt: the IBP leg of the lifeline. Failed
  // attempts show as short spans followed by a failover sibling.
  const obs::SpanId load_span = st->trace->begin("ibp.load", st->sim->now(), st->span);
  st->trace->arg(load_span, "depot", replica.read.depot);
  st->trace->arg(load_span, "offset", extent.offset);
  // Scatter-gather fetch: the fabric lands the block directly at its final
  // offset in the pooled result slab, so the landing pass is the only time
  // these payload bytes are touched by a copy.
  st->fabric->load_async(
      st->client, replica.read, replica.alloc_offset, extent.length, st->options.net,
      st->data, extent.offset,
      [st, extent_index, order, attempt, round, load_span](ibp::IbpStatus status,
                                                           std::size_t received) {
        st->trace->arg(load_span, "status", ibp::to_string(status));
        st->trace->end(load_span, st->sim->now());
        const exnode::Extent& ext = st->node.extents()[extent_index];
        if (status != ibp::IbpStatus::kOk) {
          LON_LOG(kDebug, "lors") << "download replica failed (" << ibp::to_string(status)
                                  << "), failing over";
          download_extent_try(st, extent_index, order, attempt + 1, round);
          return;
        }
        // Every landed byte is one physical copy, including blocks a failed
        // verification forces back over the network.
        st->copied += received;
        // CPU-bound verification goes to the pool when one is configured:
        // batch this arrival and drain behind a zero-delay barrier so
        // same-instant blocks are checksummed in parallel.
        if (st->options.pool != nullptr && st->options.verify_checksums) {
          st->verify_batch.push_back(DownloadState::ArrivedBlock{
              extent_index, order, attempt, round, received});
          if (!st->verify_scheduled) {
            st->verify_scheduled = true;
            st->sim->after(0, [st] { download_verify_batch(st); });
          }
          return;
        }
        // Trust nothing that crossed the network: a depot can serve rotted
        // bytes with a straight face. A mismatch is a failed fetch — the
        // rejected block is re-fetched over (or zeroed out of) its slab
        // region, never delivered.
        if (st->options.verify_checksums && ext.checksum.has_value() &&
            (received != ext.length ||
             crc32(std::span<const std::uint8_t>(*st->data)
                       .subspan(ext.offset, ext.length)) != *ext.checksum)) {
          ++st->corrupt;
          st->corruption_metric->inc();
          st->trace->instant("lors.corruption", st->sim->now(), st->span);
          LON_LOG(kDebug, "lors") << "checksum mismatch on extent " << ext.offset
                                  << ", failing over";
          download_extent_try(st, extent_index, order, attempt + 1, round);
          return;
        }
        download_stripe_done(st, ext);
        download_launch(st);
      });
}

void download_launch(const std::shared_ptr<DownloadState>& st) {
  const auto& extents = st->node.extents();
  while (st->next_extent < extents.size() &&
         st->outstanding < static_cast<std::size_t>(st->options.max_concurrent)) {
    const std::size_t index = st->next_extent++;
    ++st->outstanding;
    auto order = std::make_shared<std::vector<std::size_t>>(
        replica_order(*st, extents[index]));
    download_extent_try(st, index, order, 0, 1);
  }
  if (st->outstanding == 0 && st->next_extent >= extents.size() && st->on_done) {
    DownloadResult result;
    result.blocks_total = extents.size();
    result.blocks_failed = st->failed;
    result.replica_failovers = st->failovers;
    result.corruption_detected = st->corrupt;
    result.retries = st->retries;
    result.status = st->failed == 0 ? LorsStatus::kOk : LorsStatus::kPartial;
    result.data = std::move(st->data);
    result.copied_bytes = st->copied;
    st->trace->arg(st->span, "status", to_string(result.status));
    st->trace->arg(st->span, "blocks_failed", result.blocks_failed);
    st->trace->end(st->span, st->sim->now());
    auto cb = std::move(st->on_done);
    st->on_done = nullptr;
    cb(std::move(result));
  }
}

}  // namespace

void Lors::download_async(sim::NodeId client, const exnode::ExNode& node,
                          const DownloadOptions& options, DownloadCallback on_done) {
  auto st = std::make_shared<DownloadState>();
  st->client = client;
  st->node = node;
  st->options = options;
  st->on_done = std::move(on_done);
  // The result slab comes from a buffer pool: a steady-state client re-uses
  // the same few slabs instead of churning the allocator per access, and the
  // slab travels by reference all the way to the renderer.
  auto& buffers =
      options.buffers != nullptr ? *options.buffers : util::BufferPool::shared();
  st->data = buffers.acquire(node.length());
  st->fabric = &fabric_;
  st->net = &net_;
  st->sim = &sim_;
  st->rng = &rng_;
  st->retries_metric = &metrics_.retries;
  st->failovers_metric = &metrics_.failovers;
  st->corruption_metric = &metrics_.corruption_detected;
  st->trace = &obs_.trace;
  st->span = obs_.trace.begin("lors.download", sim_.now(), options.parent_span);
  obs_.trace.arg(st->span, "bytes", node.length());
  obs_.trace.arg(st->span, "blocks", node.extents().size());
  if (node.extents().empty()) {
    sim_.after(0, [st] { download_launch(st); });
    return;
  }
  download_launch(st);
}

// --- augment -----------------------------------------------------------------

namespace {

struct AugmentState {
  sim::NodeId client = 0;
  AugmentOptions options;
  Lors::AugmentCallback on_done;

  exnode::ExNode exnode;
  std::size_t next_extent = 0;
  std::size_t outstanding = 0;
  std::size_t copied = 0;
  std::size_t failed = 0;
  ibp::Fabric* fabric = nullptr;
  sim::Simulator* sim = nullptr;
  obs::Tracer* trace = nullptr;
  obs::SpanId span = 0;
};

void augment_launch(const std::shared_ptr<AugmentState>& st);

void augment_extent(const std::shared_ptr<AugmentState>& st, std::size_t extent_index) {
  const exnode::Extent& extent = st->exnode.extents()[extent_index];
  if (extent.replicas.empty()) {
    ++st->failed;
    --st->outstanding;
    augment_launch(st);
    return;
  }
  const exnode::Replica& source = extent.replicas.front();

  ibp::Fabric::CopyRequest req;
  req.src_read = source.read;
  req.dst_depot = st->options.target_depot;
  req.src_offset = source.alloc_offset;
  req.length = extent.length;
  req.dst_alloc.size = extent.length;
  req.dst_alloc.lease = st->options.lease;
  req.dst_alloc.type = st->options.alloc_type;
  req.net = st->options.net;

  st->fabric->copy_async(
      st->client, req,
      [st, extent_index](ibp::IbpStatus status, const ibp::CapabilitySet& caps) {
        if (status != ibp::IbpStatus::kOk) {
          ++st->failed;
        } else {
          ++st->copied;
          exnode::Replica rep;
          rep.read = caps.read;
          rep.manage = caps.manage;
          rep.alloc_offset = 0;
          st->exnode.add_replica(st->exnode.extents()[extent_index].offset, std::move(rep),
                                 st->options.preferred);
        }
        --st->outstanding;
        augment_launch(st);
      });
}

void augment_launch(const std::shared_ptr<AugmentState>& st) {
  const std::size_t total = st->exnode.extents().size();
  while (st->next_extent < total &&
         st->outstanding < static_cast<std::size_t>(st->options.max_concurrent)) {
    const std::size_t index = st->next_extent++;
    ++st->outstanding;
    augment_extent(st, index);
  }
  if (st->outstanding == 0 && st->next_extent >= total && st->on_done) {
    AugmentResult result;
    result.extents_copied = st->copied;
    result.extents_failed = st->failed;
    result.status = st->failed == 0 ? LorsStatus::kOk : LorsStatus::kPartial;
    result.exnode = std::move(st->exnode);
    st->trace->arg(st->span, "status", to_string(result.status));
    st->trace->arg(st->span, "copied", result.extents_copied);
    st->trace->end(st->span, st->sim->now());
    auto cb = std::move(st->on_done);
    st->on_done = nullptr;
    cb(result);
  }
}

}  // namespace

void Lors::augment_async(sim::NodeId client, const exnode::ExNode& node,
                         const AugmentOptions& options, AugmentCallback on_done) {
  if (options.target_depot.empty() || fabric_.find_depot(options.target_depot) == nullptr) {
    sim_.after(0, [cb = std::move(on_done), node] {
      AugmentResult r;
      r.status = LorsStatus::kNoDepots;
      r.exnode = node;
      cb(r);
    });
    return;
  }
  auto st = std::make_shared<AugmentState>();
  st->client = client;
  st->options = options;
  st->on_done = std::move(on_done);
  st->exnode = node;
  st->fabric = &fabric_;
  st->sim = &sim_;
  st->trace = &obs_.trace;
  st->span = obs_.trace.begin("lors.augment", sim_.now(), options.parent_span);
  obs_.trace.arg(st->span, "target", options.target_depot);
  if (node.extents().empty()) {
    sim_.after(0, [st] { augment_launch(st); });
    return;
  }
  augment_launch(st);
}

// --- refresh -----------------------------------------------------------------

namespace {

struct RefreshState {
  Lors::RefreshResult result;
  std::size_t outstanding = 0;
  bool launched_all = false;
  Lors::RefreshCallback on_done;

  void finish_one() {
    --outstanding;
    maybe_done();
  }
  void maybe_done() {
    if (launched_all && outstanding == 0 && on_done) {
      result.status =
          result.failed == 0 ? LorsStatus::kOk : LorsStatus::kPartial;
      auto cb = std::move(on_done);
      on_done = nullptr;
      cb(result);
    }
  }
};

}  // namespace

void Lors::refresh_async(sim::NodeId client, const exnode::ExNode& node,
                         SimDuration extra, RefreshCallback on_done) {
  auto st = std::make_shared<RefreshState>();
  st->on_done = std::move(on_done);
  for (const auto& extent : node.extents()) {
    for (const auto& replica : extent.replicas) {
      if (!replica.manage.has_value()) {
        ++st->result.failed;
        continue;
      }
      ++st->outstanding;
      fabric_.extend_async(client, *replica.manage, extra, [st](ibp::IbpStatus status) {
        if (status == ibp::IbpStatus::kOk) {
          ++st->result.extended;
        } else {
          ++st->result.failed;
        }
        st->finish_one();
      });
    }
  }
  st->launched_all = true;
  if (st->outstanding == 0) {
    sim_.after(0, [st] { st->maybe_done(); });
  }
}

// --- repair ------------------------------------------------------------------

namespace {

struct RepairState {
  sim::NodeId client = 0;
  RepairOptions options;
  Lors::RepairCallback on_done;

  exnode::ExNode original;
  RepairResult result;
  std::vector<std::vector<bool>> alive;  // [extent][replica] probe outcome
  std::size_t probes_outstanding = 0;
  bool probes_launched = false;

  struct Job {
    std::size_t extent = 0;
    std::string depot;
  };
  std::vector<Job> jobs;
  std::size_t next_job = 0;
  std::size_t jobs_outstanding = 0;

  ibp::Fabric* fabric = nullptr;
  sim::Simulator* sim = nullptr;
  obs::Counter* replicas_lost_metric = nullptr;
  obs::Counter* replicas_repaired_metric = nullptr;
  obs::Tracer* trace = nullptr;
  obs::SpanId span = 0;
};

void repair_plan(const std::shared_ptr<RepairState>& st);
void repair_pump(const std::shared_ptr<RepairState>& st);

void repair_probe_done(const std::shared_ptr<RepairState>& st, std::size_t extent,
                       std::size_t replica, bool ok) {
  st->alive[extent][replica] = ok;
  ++st->result.replicas_probed;
  --st->probes_outstanding;
  if (st->probes_launched && st->probes_outstanding == 0) repair_plan(st);
}

/// Phase 1: every replica answers for itself — a probe through the manage
/// capability when we own one, a 1-byte read otherwise. Anything but kOk
/// (offline, expired, revoked, timed out) counts the replica as gone.
void repair_probe(const std::shared_ptr<RepairState>& st) {
  const auto& extents = st->original.extents();
  st->alive.assign(extents.size(), {});
  for (std::size_t i = 0; i < extents.size(); ++i) {
    st->alive[i].assign(extents[i].replicas.size(), false);
    for (std::size_t j = 0; j < extents[i].replicas.size(); ++j) {
      const exnode::Replica& rep = extents[i].replicas[j];
      ++st->probes_outstanding;
      if (rep.manage.has_value()) {
        st->fabric->probe_async(st->client, *rep.manage,
                                [st, i, j](ibp::IbpStatus status, const ibp::AllocInfo&) {
                                  repair_probe_done(st, i, j, status == ibp::IbpStatus::kOk);
                                });
      } else {
        st->fabric->load_async(st->client, rep.read, rep.alloc_offset, 1,
                               st->options.net,
                               [st, i, j](ibp::IbpStatus status, Bytes) {
                                 repair_probe_done(st, i, j, status == ibp::IbpStatus::kOk);
                               });
      }
    }
  }
  st->probes_launched = true;
  if (st->probes_outstanding == 0) {
    st->sim->after(0, [st] { repair_plan(st); });
  }
}

/// Phase 2: rebuild the exNode with only the survivors, then plan one copy
/// job per missing replica onto a candidate depot that neither already holds
/// the extent nor is known-offline.
void repair_plan(const std::shared_ptr<RepairState>& st) {
  const auto& extents = st->original.extents();
  exnode::ExNode healed(st->original.length());
  healed.metadata() = st->original.metadata();
  for (std::size_t i = 0; i < extents.size(); ++i) {
    exnode::Extent ext;
    ext.offset = extents[i].offset;
    ext.length = extents[i].length;
    ext.checksum = extents[i].checksum;
    const auto& probes = st->alive[i];
    const bool any_alive =
        std::find(probes.begin(), probes.end(), true) != probes.end();
    if (!any_alive && !extents[i].replicas.empty()) {
      // Every replica went dark at once — almost always a transient
      // multi-depot outage, not data loss. Keep the pointers: a dead
      // capability is strictly better than none, and the next sweep can
      // still tell survivors from corpses after the depots restart.
      ext.replicas = extents[i].replicas;
      ++st->result.extents_dark;
    } else {
      for (std::size_t j = 0; j < extents[i].replicas.size(); ++j) {
        if (probes[j]) {
          ext.replicas.push_back(extents[i].replicas[j]);
        } else {
          ++st->result.replicas_lost;
          st->replicas_lost_metric->inc();
        }
      }
    }
    healed.add_extent(std::move(ext));
  }
  st->result.exnode = std::move(healed);

  for (std::size_t i = 0; i < st->result.exnode.extents().size(); ++i) {
    const exnode::Extent& ext = st->result.exnode.extents()[i];
    const auto& probes = st->alive[i];
    if (std::find(probes.begin(), probes.end(), true) == probes.end()) {
      continue;  // no live replica to copy from
    }
    std::set<std::string> hosting;
    for (const auto& rep : ext.replicas) hosting.insert(rep.read.depot);
    auto needed = static_cast<std::size_t>(st->options.target_replicas);
    std::size_t have = ext.replicas.size();
    for (const std::string& depot : st->options.candidate_depots) {
      if (have >= needed) break;
      if (hosting.contains(depot)) continue;
      if (st->fabric->find_depot(depot) == nullptr || st->fabric->is_offline(depot)) {
        continue;
      }
      hosting.insert(depot);
      ++have;
      st->jobs.push_back({i, depot});
    }
  }
  repair_pump(st);
}

/// Phase 3: run the copy jobs with bounded concurrency, then report.
void repair_pump(const std::shared_ptr<RepairState>& st) {
  while (st->next_job < st->jobs.size() &&
         st->jobs_outstanding < static_cast<std::size_t>(st->options.max_concurrent)) {
    const RepairState::Job job = st->jobs[st->next_job++];
    ++st->jobs_outstanding;
    const exnode::Extent& ext = st->result.exnode.extents()[job.extent];
    const exnode::Replica& source = ext.replicas.front();

    ibp::Fabric::CopyRequest req;
    req.src_read = source.read;
    req.dst_depot = job.depot;
    req.src_offset = source.alloc_offset;
    req.length = ext.length;
    req.dst_alloc.size = ext.length;
    req.dst_alloc.lease = st->options.lease;
    req.dst_alloc.type = st->options.alloc_type;
    req.net = st->options.net;

    st->fabric->copy_async(
        st->client, req,
        [st, job](ibp::IbpStatus status, const ibp::CapabilitySet& caps) {
          if (status == ibp::IbpStatus::kOk) {
            ++st->result.replicas_added;
            st->replicas_repaired_metric->inc();
            exnode::Replica rep;
            rep.read = caps.read;
            rep.manage = caps.manage;
            rep.alloc_offset = 0;
            st->result.exnode.add_replica(
                st->result.exnode.extents()[job.extent].offset, std::move(rep));
          }
          --st->jobs_outstanding;
          repair_pump(st);
        });
  }
  if (st->jobs_outstanding == 0 && st->next_job >= st->jobs.size() && st->on_done) {
    for (const auto& ext : st->result.exnode.extents()) {
      if (ext.replicas.size() < static_cast<std::size_t>(st->options.target_replicas)) {
        ++st->result.extents_short;
      }
    }
    st->result.status = st->result.extents_short == 0 && st->result.extents_dark == 0
                            ? LorsStatus::kOk
                            : LorsStatus::kPartial;
    st->trace->arg(st->span, "status", to_string(st->result.status));
    st->trace->arg(st->span, "lost", st->result.replicas_lost);
    st->trace->arg(st->span, "repaired", st->result.replicas_added);
    st->trace->end(st->span, st->sim->now());
    auto cb = std::move(st->on_done);
    st->on_done = nullptr;
    cb(st->result);
  }
}

}  // namespace

void Lors::repair_async(sim::NodeId client, const exnode::ExNode& node,
                        const RepairOptions& options, RepairCallback on_done) {
  metrics_.repairs_run.inc();
  auto st = std::make_shared<RepairState>();
  st->client = client;
  st->options = options;
  st->on_done = std::move(on_done);
  st->original = node;
  st->fabric = &fabric_;
  st->sim = &sim_;
  st->replicas_lost_metric = &metrics_.replicas_lost;
  st->replicas_repaired_metric = &metrics_.replicas_repaired;
  st->trace = &obs_.trace;
  st->span = obs_.trace.begin("lors.repair", sim_.now());
  repair_probe(st);
}

}  // namespace lon::lors
