// The Logistical Runtime System (LoRS).
//
// Higher-level data movement composed from primitive IBP operations — the
// "higher-level tools and protocols with more abstract semantics running on
// clients" of the exposed LoN architecture (paper section 2.2):
//
//  * upload: stripe an object across depots in fixed-size blocks, with a
//    configurable replica count per block, producing an exNode;
//  * download: reassemble an object from its exNode using a bounded pool of
//    concurrent block fetches over parallel TCP streams (the multi-threaded
//    wide-area download algorithms of Plank et al., CS-02-485), preferring
//    the lowest-latency replica and failing over to others on error;
//  * augment/stage: add a replica of every extent on a target depot via
//    third-party copies, optionally making it the preferred replica — this
//    is the mechanism behind aggressive prestaging to a LAN depot.
//
// All calls are asynchronous in virtual time: they return immediately and
// invoke the callback when the composed operation completes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exnode/exnode.hpp"
#include "ibp/service.hpp"
#include "simnet/network.hpp"

namespace lon::lors {

/// Outcome of a composed LoRS operation.
enum class LorsStatus {
  kOk,
  kPartial,      ///< some blocks failed on every replica
  kNoDepots,     ///< no depot available for upload/augment
  kAllocFailed,  ///< allocation refused and no alternative worked
  kCancelled,
};

[[nodiscard]] const char* to_string(LorsStatus status);

struct UploadOptions {
  std::vector<std::string> depots;   ///< round-robin stripe targets (required)
  std::uint64_t block_bytes = 512 * 1024;  ///< stripe unit
  int replicas = 1;                  ///< copies of each block on distinct depots
  SimDuration lease = 3600 * kSecond;
  ibp::AllocType alloc_type = ibp::AllocType::kHard;
  sim::TransferOptions net;          ///< per-block transfer options
  int max_concurrent = 8;            ///< in-flight block uploads
};

struct DownloadOptions {
  sim::TransferOptions net;          ///< per-block transfer options
  int max_concurrent = 8;            ///< in-flight block downloads
};

struct AugmentOptions {
  std::string target_depot;          ///< depot that receives the new replicas
  bool preferred = false;            ///< place the new replica first
  SimDuration lease = 3600 * kSecond;
  ibp::AllocType alloc_type = ibp::AllocType::kSoft;  ///< staging is soft by default
  sim::TransferOptions net;          ///< options for depot-to-depot flows
  int max_concurrent = 4;
};

struct UploadResult {
  LorsStatus status = LorsStatus::kOk;
  exnode::ExNode exnode;
};

struct DownloadResult {
  LorsStatus status = LorsStatus::kOk;
  Bytes data;
  std::size_t blocks_total = 0;
  std::size_t blocks_failed = 0;
  std::size_t replica_failovers = 0;  ///< fetches that had to try another replica
};

struct AugmentResult {
  LorsStatus status = LorsStatus::kOk;
  exnode::ExNode exnode;             ///< input exNode plus the new replicas
  std::size_t extents_copied = 0;
  std::size_t extents_failed = 0;
};

class Lors {
 public:
  Lors(sim::Simulator& sim, sim::Network& net, ibp::Fabric& fabric)
      : sim_(sim), net_(net), fabric_(fabric) {}

  Lors(const Lors&) = delete;
  Lors& operator=(const Lors&) = delete;

  using UploadCallback = std::function<void(const UploadResult&)>;
  /// Stripes `data` across options.depots from node `client`.
  void upload_async(sim::NodeId client, Bytes data, const UploadOptions& options,
                    UploadCallback on_done);

  using DownloadCallback = std::function<void(DownloadResult)>;
  /// Reassembles the exNode's object at node `client`.
  void download_async(sim::NodeId client, const exnode::ExNode& node,
                      const DownloadOptions& options, DownloadCallback on_done);

  using AugmentCallback = std::function<void(const AugmentResult&)>;
  /// Adds a replica of every extent onto options.target_depot via
  /// third-party copies orchestrated from `client`.
  void augment_async(sim::NodeId client, const exnode::ExNode& node,
                     const AugmentOptions& options, AugmentCallback on_done);

  struct RefreshResult {
    LorsStatus status = LorsStatus::kOk;
    std::size_t extended = 0;  ///< replicas whose lease was renewed
    std::size_t failed = 0;    ///< replicas already gone or refused
  };
  using RefreshCallback = std::function<void(const RefreshResult&)>;
  /// Renews the lease of every replica in the exNode to now + extra — the
  /// maintenance an owner must perform because IBP leases are deliberately
  /// time-limited. Uses each replica's manage capability (populated by
  /// upload/augment); replicas without one count as failed.
  void refresh_async(sim::NodeId client, const exnode::ExNode& node, SimDuration extra,
                     RefreshCallback on_done);

 private:
  sim::Simulator& sim_;
  sim::Network& net_;
  ibp::Fabric& fabric_;
};

}  // namespace lon::lors
