// The Logistical Runtime System (LoRS).
//
// Higher-level data movement composed from primitive IBP operations — the
// "higher-level tools and protocols with more abstract semantics running on
// clients" of the exposed LoN architecture (paper section 2.2):
//
//  * upload: stripe an object across depots in fixed-size blocks, with a
//    configurable replica count per block, producing an exNode;
//  * download: reassemble an object from its exNode using a bounded pool of
//    concurrent block fetches over parallel TCP streams (the multi-threaded
//    wide-area download algorithms of Plank et al., CS-02-485), preferring
//    the lowest-latency replica and failing over to others on error;
//  * augment/stage: add a replica of every extent on a target depot via
//    third-party copies, optionally making it the preferred replica — this
//    is the mechanism behind aggressive prestaging to a LAN depot.
//
// All calls are asynchronous in virtual time: they return immediately and
// invoke the callback when the composed operation completes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "exnode/exnode.hpp"
#include "ibp/service.hpp"
#include "obs/obs.hpp"
#include "simnet/network.hpp"
#include "util/buffer_pool.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace lon::lors {

/// Outcome of a composed LoRS operation.
enum class LorsStatus {
  kOk,
  kPartial,      ///< some blocks failed on every replica
  kNoDepots,     ///< no depot available for upload/augment
  kAllocFailed,  ///< allocation refused and no alternative worked
  kCancelled,
};

[[nodiscard]] const char* to_string(LorsStatus status);

struct UploadOptions {
  std::vector<std::string> depots;   ///< round-robin stripe targets (required)
  std::uint64_t block_bytes = 512 * 1024;  ///< stripe unit
  int replicas = 1;                  ///< copies of each block on distinct depots
  SimDuration lease = 3600 * kSecond;
  ibp::AllocType alloc_type = ibp::AllocType::kHard;
  sim::TransferOptions net;          ///< per-block transfer options
  int max_concurrent = 8;            ///< in-flight block uploads
};

/// Retry discipline for a composed operation. One "attempt" is a full round
/// over every replica of an extent; between rounds the client backs off
/// exponentially with seeded jitter so that many clients recovering from the
/// same depot failure do not retry in lockstep.
struct RetryPolicy {
  int max_attempts = 1;              ///< rounds over the replica set (1 = no retry)
  SimDuration base_backoff = 100 * kMillisecond;
  double multiplier = 2.0;           ///< backoff growth per round
  double jitter_frac = 0.25;         ///< +/- fraction applied to each backoff
  SimDuration max_backoff = 10 * kSecond;

  /// Backoff before retry round `round` (1-based: the wait after round
  /// `round` failed). Jitter is drawn from `rng`.
  [[nodiscard]] SimDuration backoff_for(int round, Rng& rng) const;
};

/// Notification that one extent's bytes have been verified in place in the
/// download's result slab. `buffer` is the in-progress result object (full
/// length, zero-filled where extents are still in flight); only
/// [offset, offset + length) is guaranteed valid during this callback.
/// `owner` shares ownership of that slab — a consumer that reads stripe
/// bytes asynchronously (the decompress pipeline's pool tasks) must hold it
/// so the pooled buffer cannot be recycled underneath the reads.
struct StripeEvent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  const Bytes* buffer = nullptr;
  std::shared_ptr<const Bytes> owner;
};

struct DownloadOptions {
  sim::TransferOptions net;          ///< per-block transfer options
  int max_concurrent = 8;            ///< in-flight block downloads
  RetryPolicy retry;                 ///< rounds + backoff when every replica fails
  /// Verify each extent against the CRC32 recorded at upload; a mismatching
  /// block is treated as a failed fetch (failover to the next replica).
  /// Extents without a recorded checksum are delivered unverified.
  bool verify_checksums = true;
  /// When set, checksum verification and result assembly of blocks that land
  /// at the same virtual instant run batched across this pool instead of
  /// serially on the simulator thread. Results are processed in ascending
  /// extent order behind a zero-delay barrier, so the outcome (bytes, status,
  /// counters, virtual completion time) is identical to the serial path.
  ThreadPool* pool = nullptr;
  /// Called on the simulator thread as each extent is verified and assembled,
  /// in completion order — the hook the client agent's decompress pipeline
  /// hangs off to overlap chunk decode with in-flight transfers.
  std::function<void(const StripeEvent&)> on_stripe;
  /// Parent for the lors.download trace span — lets the span chain survive
  /// the async hop from whoever requested the download.
  obs::SpanId parent_span = 0;
  /// Pool the result slab is acquired from (null = util::BufferPool::shared()).
  util::BufferPool* buffers = nullptr;
};

struct AugmentOptions {
  std::string target_depot;          ///< depot that receives the new replicas
  bool preferred = false;            ///< place the new replica first
  SimDuration lease = 3600 * kSecond;
  ibp::AllocType alloc_type = ibp::AllocType::kSoft;  ///< staging is soft by default
  sim::TransferOptions net;          ///< options for depot-to-depot flows
  int max_concurrent = 4;
  obs::SpanId parent_span = 0;       ///< parent for the lors.augment trace span
};

struct UploadResult {
  LorsStatus status = LorsStatus::kOk;
  exnode::ExNode exnode;
};

struct DownloadResult {
  LorsStatus status = LorsStatus::kOk;
  /// The assembled object in a pooled slab (never null once the callback
  /// fires). Stripes land scatter-gather directly in here; downstream layers
  /// alias the slab instead of copying it, and the pool reclaims it when the
  /// last holder lets go.
  std::shared_ptr<Bytes> data;
  std::size_t blocks_total = 0;
  std::size_t blocks_failed = 0;
  std::size_t replica_failovers = 0;  ///< fetches that had to try another replica
  std::size_t corruption_detected = 0;  ///< checksum mismatches (never delivered)
  std::size_t retries = 0;            ///< extra retry rounds taken
  /// Payload bytes physically copied assembling this download — one landing
  /// pass per delivered block, plus one per corrupt/failed arrival that had
  /// to be re-fetched. The demand path's bytes-copied-per-access gate is
  /// built on this.
  std::uint64_t copied_bytes = 0;
};

struct AugmentResult {
  LorsStatus status = LorsStatus::kOk;
  exnode::ExNode exnode;             ///< input exNode plus the new replicas
  std::size_t extents_copied = 0;
  std::size_t extents_failed = 0;
};

struct RepairOptions {
  int target_replicas = 2;           ///< desired live replicas per extent
  std::vector<std::string> candidate_depots;  ///< where new replicas may land
  SimDuration lease = 3600 * kSecond;
  ibp::AllocType alloc_type = ibp::AllocType::kHard;
  sim::TransferOptions net;          ///< options for the repair copies
  int max_concurrent = 4;
};

struct RepairResult {
  LorsStatus status = LorsStatus::kOk;  ///< kPartial if any extent stays short
  exnode::ExNode exnode;             ///< input minus dead replicas plus new ones
  std::size_t replicas_probed = 0;
  std::size_t replicas_lost = 0;     ///< dead replicas dropped from the exNode
  std::size_t replicas_added = 0;    ///< repair copies that landed
  std::size_t extents_short = 0;     ///< extents still below target afterwards
  /// Extents whose every replica probed dead in the same sweep. Their
  /// original replicas are kept verbatim (dropping the last pointers would
  /// turn a transient multi-depot outage into permanent loss); a later sweep
  /// separates survivors from corpses once something answers again.
  std::size_t extents_dark = 0;
};

/// Cumulative robustness counters across every operation run through one
/// Lors instance (the session-level self-healing story).
struct LorsStats {
  std::uint64_t retries = 0;             ///< extra download rounds
  std::uint64_t failovers = 0;           ///< replica failovers within a round
  std::uint64_t corruption_detected = 0; ///< checksum mismatches caught
  std::uint64_t repairs_run = 0;         ///< repair_async invocations
  std::uint64_t replicas_repaired = 0;   ///< replicas re-created by repair
  std::uint64_t replicas_lost = 0;       ///< dead replicas discovered by repair
};

class Lors {
 public:
  /// `seed` drives retry-backoff jitter (and nothing else), so runs are
  /// replayable bit-for-bit.
  Lors(sim::Simulator& sim, sim::Network& net, ibp::Fabric& fabric,
       std::uint64_t seed = 0x10f5, obs::Context* obs = nullptr)
      : sim_(sim),
        net_(net),
        fabric_(fabric),
        rng_(seed),
        obs_(obs != nullptr ? *obs : obs::global()),
        scope_(obs_.metrics.scope("lors")),
        metrics_{scope_.counter("lors.retries"),
                 scope_.counter("lors.failovers"),
                 scope_.counter("lors.corruption_detected"),
                 scope_.counter("lors.repairs_run"),
                 scope_.counter("lors.replicas_repaired"),
                 scope_.counter("lors.replicas_lost")} {}

  Lors(const Lors&) = delete;
  Lors& operator=(const Lors&) = delete;

  using UploadCallback = std::function<void(const UploadResult&)>;
  /// Stripes `data` across options.depots from node `client`.
  void upload_async(sim::NodeId client, Bytes data, const UploadOptions& options,
                    UploadCallback on_done);

  using DownloadCallback = std::function<void(DownloadResult)>;
  /// Reassembles the exNode's object at node `client`.
  void download_async(sim::NodeId client, const exnode::ExNode& node,
                      const DownloadOptions& options, DownloadCallback on_done);

  using AugmentCallback = std::function<void(const AugmentResult&)>;
  /// Adds a replica of every extent onto options.target_depot via
  /// third-party copies orchestrated from `client`.
  void augment_async(sim::NodeId client, const exnode::ExNode& node,
                     const AugmentOptions& options, AugmentCallback on_done);

  struct RefreshResult {
    LorsStatus status = LorsStatus::kOk;
    std::size_t extended = 0;  ///< replicas whose lease was renewed
    std::size_t failed = 0;    ///< replicas already gone or refused
  };
  using RefreshCallback = std::function<void(const RefreshResult&)>;
  /// Renews the lease of every replica in the exNode to now + extra — the
  /// maintenance an owner must perform because IBP leases are deliberately
  /// time-limited. Uses each replica's manage capability (populated by
  /// upload/augment); replicas without one count as failed.
  void refresh_async(sim::NodeId client, const exnode::ExNode& node, SimDuration extra,
                     RefreshCallback on_done);

  using RepairCallback = std::function<void(const RepairResult&)>;
  /// Self-healing: probes every replica of every extent, drops the dead ones
  /// from the exNode, then re-augments any extent below target_replicas by
  /// third-party-copying a surviving replica onto a candidate depot that does
  /// not already hold the extent (and is not offline). The caller receives
  /// the healed exNode; persisting it (e.g. back into the DVS) is the
  /// caller's job. Replicas are probed through their manage capability when
  /// present, otherwise with a 1-byte read.
  void repair_async(sim::NodeId client, const exnode::ExNode& node,
                    const RepairOptions& options, RepairCallback on_done);

  /// Robustness counters, read back out of the obs registry (the single
  /// source of truth; this struct is a compatibility view).
  [[nodiscard]] const LorsStats& stats() const;

 private:
  struct Metrics {
    obs::Counter& retries;
    obs::Counter& failovers;
    obs::Counter& corruption_detected;
    obs::Counter& repairs_run;
    obs::Counter& replicas_repaired;
    obs::Counter& replicas_lost;
  };

  sim::Simulator& sim_;
  sim::Network& net_;
  ibp::Fabric& fabric_;
  Rng rng_;
  obs::Context& obs_;
  obs::Scope scope_;
  Metrics metrics_;
  mutable LorsStats stats_view_;
};

}  // namespace lon::lors
