// Regular-grid scalar volumes with trilinear sampling.
//
// Volumes live in the unit cube [-1, 1]^3 in world space (the light-field
// spheres are concentric with this cube). Values are stored as float and
// conventionally normalized to [0, 1] so transfer functions can be defined
// over a fixed domain.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/vec3.hpp"

namespace lon::volume {

class ScalarVolume {
 public:
  ScalarVolume() = default;
  ScalarVolume(std::size_t nx, std::size_t ny, std::size_t nz);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t nz() const { return nz_; }
  [[nodiscard]] std::size_t voxel_count() const { return data_.size(); }

  [[nodiscard]] float& at(std::size_t i, std::size_t j, std::size_t k) {
    return data_[(k * ny_ + j) * nx_ + i];
  }
  [[nodiscard]] float at(std::size_t i, std::size_t j, std::size_t k) const {
    return data_[(k * ny_ + j) * nx_ + i];
  }

  [[nodiscard]] const std::vector<float>& data() const { return data_; }
  [[nodiscard]] std::vector<float>& data() { return data_; }

  /// Trilinear sample at a world position in [-1, 1]^3; clamps to the
  /// boundary outside.
  [[nodiscard]] float sample(const Vec3& world) const;

  /// Central-difference gradient of the field at a world position (used for
  /// shading). Scaled to world units.
  [[nodiscard]] Vec3 gradient(const Vec3& world) const;

  [[nodiscard]] float min_value() const;
  [[nodiscard]] float max_value() const;

  /// Affinely rescales values into [0, 1] (no-op on a constant volume).
  void normalize();

 private:
  std::size_t nx_ = 0, ny_ = 0, nz_ = 0;
  std::vector<float> data_;
};

}  // namespace lon::volume
