// Transfer functions: scalar value -> RGBA.
//
// Piecewise-linear over [0, 1], the standard volume rendering building
// block. Presets cover the two viewing situations the paper calls out:
// semi-transparent volumetric rendering and near-opaque surfaces.
#pragma once

#include <array>
#include <vector>

namespace lon::volume {

struct Rgba {
  double r = 0.0;
  double g = 0.0;
  double b = 0.0;
  double a = 0.0;
};

class TransferFunction {
 public:
  struct ControlPoint {
    double value = 0.0;  ///< scalar in [0, 1]
    Rgba color;
  };

  TransferFunction() = default;
  explicit TransferFunction(std::vector<ControlPoint> points);

  /// Adds a control point (kept sorted by value).
  void add(double value, const Rgba& color);

  /// Piecewise-linear lookup; clamps outside the control range.
  [[nodiscard]] Rgba evaluate(double value) const;

  [[nodiscard]] const std::vector<ControlPoint>& points() const { return points_; }

  /// Semi-transparent preset with distinct hues for the negative and
  /// positive potential lobes (negHip-style).
  static TransferFunction neghip_preset();

  /// Near-opaque shell around one iso-value (iso-surface-like viewing).
  static TransferFunction opaque_preset(double iso = 0.5, double width = 0.05);

 private:
  std::vector<ControlPoint> points_;
};

}  // namespace lon::volume
