#include "volume/volume.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lon::volume {

ScalarVolume::ScalarVolume(std::size_t nx, std::size_t ny, std::size_t nz)
    : nx_(nx), ny_(ny), nz_(nz), data_(nx * ny * nz, 0.0f) {
  if (nx < 2 || ny < 2 || nz < 2) {
    throw std::invalid_argument("ScalarVolume: each dimension must be >= 2");
  }
}

float ScalarVolume::sample(const Vec3& world) const {
  // Map [-1, 1] to continuous voxel coordinates [0, n-1].
  const double fx = (std::clamp(world.x, -1.0, 1.0) + 1.0) * 0.5 * (static_cast<double>(nx_) - 1.0);
  const double fy = (std::clamp(world.y, -1.0, 1.0) + 1.0) * 0.5 * (static_cast<double>(ny_) - 1.0);
  const double fz = (std::clamp(world.z, -1.0, 1.0) + 1.0) * 0.5 * (static_cast<double>(nz_) - 1.0);

  const auto x0 = static_cast<std::size_t>(fx);
  const auto y0 = static_cast<std::size_t>(fy);
  const auto z0 = static_cast<std::size_t>(fz);
  const std::size_t x1 = std::min(x0 + 1, nx_ - 1);
  const std::size_t y1 = std::min(y0 + 1, ny_ - 1);
  const std::size_t z1 = std::min(z0 + 1, nz_ - 1);
  const double tx = fx - static_cast<double>(x0);
  const double ty = fy - static_cast<double>(y0);
  const double tz = fz - static_cast<double>(z0);

  const double c000 = at(x0, y0, z0), c100 = at(x1, y0, z0);
  const double c010 = at(x0, y1, z0), c110 = at(x1, y1, z0);
  const double c001 = at(x0, y0, z1), c101 = at(x1, y0, z1);
  const double c011 = at(x0, y1, z1), c111 = at(x1, y1, z1);

  const double c00 = c000 + tx * (c100 - c000);
  const double c10 = c010 + tx * (c110 - c010);
  const double c01 = c001 + tx * (c101 - c001);
  const double c11 = c011 + tx * (c111 - c011);
  const double c0 = c00 + ty * (c10 - c00);
  const double c1 = c01 + ty * (c11 - c01);
  return static_cast<float>(c0 + tz * (c1 - c0));
}

Vec3 ScalarVolume::gradient(const Vec3& world) const {
  const double h = 2.0 / static_cast<double>(std::max({nx_, ny_, nz_}));
  return {
      (sample({world.x + h, world.y, world.z}) - sample({world.x - h, world.y, world.z})) /
          (2.0 * h),
      (sample({world.x, world.y + h, world.z}) - sample({world.x, world.y - h, world.z})) /
          (2.0 * h),
      (sample({world.x, world.y, world.z + h}) - sample({world.x, world.y, world.z - h})) /
          (2.0 * h),
  };
}

float ScalarVolume::min_value() const {
  return *std::min_element(data_.begin(), data_.end());
}

float ScalarVolume::max_value() const {
  return *std::max_element(data_.begin(), data_.end());
}

void ScalarVolume::normalize() {
  const float lo = min_value();
  const float hi = max_value();
  if (hi <= lo) return;
  const float scale = 1.0f / (hi - lo);
  for (float& v : data_) v = (v - lo) * scale;
}

}  // namespace lon::volume
