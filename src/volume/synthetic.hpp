// Synthetic scientific datasets.
//
// The paper evaluates on negHip — the 64^3 electrical potential of a
// negative high-energy protein. We do not have that file, so
// make_neghip_like() builds a field with the same size and character: the
// summed Coulomb potential of a seeded arrangement of positive and negative
// point charges, normalized to [0, 1]. Two further fields (Gaussian-blob
// "fuel" and the Marschner-Lobb test signal) exercise the renderer and the
// compression pipeline with different frequency content.
#pragma once

#include <cstddef>
#include <cstdint>

#include "volume/volume.hpp"

namespace lon::volume {

/// Coulomb potential of `charges` point charges (alternating sign) placed
/// pseudo-randomly inside the unit cube. Deterministic per seed.
ScalarVolume make_neghip_like(std::size_t n = 64, std::uint64_t seed = 2003,
                              int charges = 14);

/// Smooth sum of Gaussian blobs — low-frequency, very compressible.
ScalarVolume make_fuel_like(std::size_t n = 64, std::uint64_t seed = 7, int blobs = 5);

/// The Marschner-Lobb resolution test signal — high-frequency content near
/// the Nyquist limit, the hard case for interpolation and compression.
ScalarVolume make_marschner_lobb(std::size_t n = 64, double fm = 6.0, double alpha = 0.25);

}  // namespace lon::volume
