#include "volume/io.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>

#include "util/bytes.hpp"

namespace lon::volume {

namespace {
constexpr std::uint32_t kLvolMagic = 0x4c564f4c;  // "LVOL"
}

void save_raw_u8(const ScalarVolume& volume, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_raw_u8: cannot open " + path);
  for (const float v : volume.data()) {
    const auto byte =
        static_cast<char>(std::clamp(v, 0.0f, 1.0f) * 255.0f + 0.5f);
    out.put(byte);
  }
}

ScalarVolume load_raw_u8(const std::string& path, std::size_t nx, std::size_t ny,
                         std::size_t nz) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_raw_u8: cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  if (data.size() != nx * ny * nz) {
    throw std::runtime_error("load_raw_u8: file holds " + std::to_string(data.size()) +
                             " voxels, expected " + std::to_string(nx * ny * nz));
  }
  ScalarVolume volume(nx, ny, nz);
  for (std::size_t i = 0; i < data.size(); ++i) {
    volume.data()[i] = static_cast<float>(data[i]) / 255.0f;
  }
  return volume;
}

void save_lvol(const ScalarVolume& volume, const std::string& path) {
  ByteWriter out;
  out.u32(kLvolMagic);
  out.u32(static_cast<std::uint32_t>(volume.nx()));
  out.u32(static_cast<std::uint32_t>(volume.ny()));
  out.u32(static_cast<std::uint32_t>(volume.nz()));
  for (const float v : volume.data()) out.f32(v);

  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw std::runtime_error("save_lvol: cannot open " + path);
  file.write(reinterpret_cast<const char*>(out.bytes().data()),
             static_cast<std::streamsize>(out.size()));
}

ScalarVolume load_lvol(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw std::runtime_error("load_lvol: cannot open " + path);
  Bytes data((std::istreambuf_iterator<char>(file)), std::istreambuf_iterator<char>());
  try {
    ByteReader in(data);
    if (in.u32() != kLvolMagic) throw std::runtime_error("load_lvol: bad magic");
    const std::size_t nx = in.u32();
    const std::size_t ny = in.u32();
    const std::size_t nz = in.u32();
    ScalarVolume volume(nx, ny, nz);
    for (float& v : volume.data()) v = in.f32();
    if (!in.done()) throw std::runtime_error("load_lvol: trailing bytes");
    return volume;
  } catch (const DecodeError& e) {
    throw std::runtime_error(std::string("load_lvol: truncated file: ") + e.what());
  }
}

}  // namespace lon::volume
