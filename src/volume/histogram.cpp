#include "volume/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lon::volume {

double Histogram::percentile(double fraction) const {
  if (total == 0) return 0.0;
  fraction = std::clamp(fraction, 0.0, 1.0);
  // Rank of the sample we want, 1-based. Truncating here would make target 0
  // for small fractions and return the center of a leading empty bin.
  const auto target = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(
             std::ceil(fraction * static_cast<double>(total))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < bins.size(); ++b) {
    seen += bins[b];
    if (seen >= target) return bin_center(b);
  }
  return bin_center(bins.size() - 1);
}

std::size_t Histogram::mode_bin() const {
  return static_cast<std::size_t>(
      std::max_element(bins.begin(), bins.end()) - bins.begin());
}

Histogram compute_histogram(const ScalarVolume& volume, std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("compute_histogram: zero bins");
  Histogram h;
  h.bins.assign(bins, 0);
  for (const float v : volume.data()) {
    const double clamped = std::clamp(static_cast<double>(v), 0.0, 1.0);
    auto bin = static_cast<std::size_t>(clamped * static_cast<double>(bins));
    if (bin == bins) bin = bins - 1;
    ++h.bins[bin];
    ++h.total;
  }
  return h;
}

TransferFunction suggest_transfer_function(const ScalarVolume& volume) {
  const Histogram h = compute_histogram(volume, 64);
  const double background = h.bin_center(h.mode_bin());
  const double lo = h.percentile(0.02);
  const double hi = h.percentile(0.98);

  // A transparent notch at the background value; opacity ramps toward the
  // 2nd/98th percentile tails; cool hue below the background, warm above.
  const double notch = 0.06;
  TransferFunction tf;
  tf.add(std::max(0.0, lo - 0.05), {0.25, 0.4, 1.0, 0.85});
  tf.add(lo, {0.3, 0.5, 1.0, 0.5});
  tf.add(std::max(0.0, background - notch), {0.6, 0.8, 1.0, 0.0});
  tf.add(background, {0.0, 0.0, 0.0, 0.0});
  tf.add(std::min(1.0, background + notch), {1.0, 0.8, 0.5, 0.0});
  tf.add(hi, {1.0, 0.5, 0.2, 0.5});
  tf.add(std::min(1.0, hi + 0.05), {1.0, 0.9, 0.5, 0.85});
  return tf;
}

}  // namespace lon::volume
