// Volume file I/O.
//
// The classic datasets of this era (negHip among them) circulate as
// headerless .raw files of 8-bit voxels with the dimensions documented out
// of band; load_raw_u8/save_raw_u8 handle that convention so a user who
// does have negHip.raw (64x64x64, uint8) can drop it straight in. The
// self-describing .lvol format (small header + float32 voxels) is this
// library's native round-trip format.
#pragma once

#include <string>

#include "volume/volume.hpp"

namespace lon::volume {

/// Writes voxels quantized to bytes (v * 255, clamped), headerless raw.
void save_raw_u8(const ScalarVolume& volume, const std::string& path);

/// Reads a headerless 8-bit raw volume of the given dimensions, scaling
/// voxels to [0, 1]. Throws std::runtime_error on size mismatch.
ScalarVolume load_raw_u8(const std::string& path, std::size_t nx, std::size_t ny,
                         std::size_t nz);

/// Native format: "LVOL" magic, dimensions, float32 voxels (little-endian).
void save_lvol(const ScalarVolume& volume, const std::string& path);
ScalarVolume load_lvol(const std::string& path);

}  // namespace lon::volume
