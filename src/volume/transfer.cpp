#include "volume/transfer.hpp"

#include <algorithm>

namespace lon::volume {

TransferFunction::TransferFunction(std::vector<ControlPoint> points)
    : points_(std::move(points)) {
  std::sort(points_.begin(), points_.end(),
            [](const ControlPoint& a, const ControlPoint& b) { return a.value < b.value; });
}

void TransferFunction::add(double value, const Rgba& color) {
  ControlPoint cp{value, color};
  const auto pos = std::lower_bound(
      points_.begin(), points_.end(), cp,
      [](const ControlPoint& a, const ControlPoint& b) { return a.value < b.value; });
  points_.insert(pos, cp);
}

Rgba TransferFunction::evaluate(double value) const {
  if (points_.empty()) return {};
  if (value <= points_.front().value) return points_.front().color;
  if (value >= points_.back().value) return points_.back().color;
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (value <= points_[i].value) {
      const ControlPoint& lo = points_[i - 1];
      const ControlPoint& hi = points_[i];
      const double span = hi.value - lo.value;
      const double t = span > 0.0 ? (value - lo.value) / span : 0.0;
      return {
          lo.color.r + t * (hi.color.r - lo.color.r),
          lo.color.g + t * (hi.color.g - lo.color.g),
          lo.color.b + t * (hi.color.b - lo.color.b),
          lo.color.a + t * (hi.color.a - lo.color.a),
      };
    }
  }
  return points_.back().color;
}

TransferFunction TransferFunction::neghip_preset() {
  // The neutral band (potential far from any charge) is fully transparent so
  // the positive/negative lobes stand out as distinct structures.
  TransferFunction tf;
  tf.add(0.00, {0.2, 0.3, 1.0, 0.85});   // deepest negative lobe: saturated blue
  tf.add(0.18, {0.3, 0.5, 1.0, 0.45});
  tf.add(0.32, {0.6, 0.8, 1.0, 0.10});   // fading into transparency
  tf.add(0.42, {0.0, 0.0, 0.0, 0.00});   // neutral region: invisible
  tf.add(0.58, {0.0, 0.0, 0.0, 0.00});
  tf.add(0.68, {1.0, 0.7, 0.3, 0.10});   // positive lobe: orange glow
  tf.add(0.84, {1.0, 0.35, 0.1, 0.45});
  tf.add(1.00, {1.0, 0.9, 0.5, 0.85});   // hottest core: yellow-white
  return tf;
}

TransferFunction TransferFunction::opaque_preset(double iso, double width) {
  TransferFunction tf;
  tf.add(0.0, {0.0, 0.0, 0.0, 0.0});
  tf.add(iso - width, {0.8, 0.8, 0.7, 0.0});
  tf.add(iso, {0.9, 0.85, 0.7, 0.95});
  tf.add(iso + width, {0.8, 0.8, 0.7, 0.0});
  tf.add(1.0, {0.0, 0.0, 0.0, 0.0});
  return tf;
}

}  // namespace lon::volume
