#include "volume/synthetic.hpp"

#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/vec3.hpp"

namespace lon::volume {

ScalarVolume make_neghip_like(std::size_t n, std::uint64_t seed, int charges) {
  ScalarVolume vol(n, n, n);
  Rng rng(seed);
  struct Charge {
    Vec3 position;
    double q;
  };
  std::vector<Charge> sites;
  sites.reserve(static_cast<std::size_t>(charges));
  for (int c = 0; c < charges; ++c) {
    // Keep charges inside +-0.6 so the interesting structure sits well
    // within the cube (as the protein does in negHip).
    Charge site;
    site.position = {rng.uniform(-0.6, 0.6), rng.uniform(-0.6, 0.6),
                     rng.uniform(-0.6, 0.6)};
    site.q = (c % 2 == 0 ? 1.0 : -1.0) * rng.uniform(0.5, 1.0);
    sites.push_back(site);
  }

  constexpr double kSoftening = 0.05;  // avoids the 1/0 singularity
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const Vec3 p{
            2.0 * static_cast<double>(i) / (static_cast<double>(n) - 1.0) - 1.0,
            2.0 * static_cast<double>(j) / (static_cast<double>(n) - 1.0) - 1.0,
            2.0 * static_cast<double>(k) / (static_cast<double>(n) - 1.0) - 1.0,
        };
        double potential = 0.0;
        for (const auto& site : sites) {
          const double r = (p - site.position).norm();
          potential += site.q / (r + kSoftening);
        }
        vol.at(i, j, k) = static_cast<float>(potential);
      }
    }
  }
  vol.normalize();
  return vol;
}

ScalarVolume make_fuel_like(std::size_t n, std::uint64_t seed, int blobs) {
  ScalarVolume vol(n, n, n);
  Rng rng(seed);
  struct Blob {
    Vec3 center;
    double sigma;
    double amplitude;
  };
  std::vector<Blob> sites;
  for (int b = 0; b < blobs; ++b) {
    sites.push_back({{rng.uniform(-0.5, 0.5), rng.uniform(-0.5, 0.5),
                      rng.uniform(-0.5, 0.5)},
                     rng.uniform(0.15, 0.4),
                     rng.uniform(0.5, 1.0)});
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const Vec3 p{
            2.0 * static_cast<double>(i) / (static_cast<double>(n) - 1.0) - 1.0,
            2.0 * static_cast<double>(j) / (static_cast<double>(n) - 1.0) - 1.0,
            2.0 * static_cast<double>(k) / (static_cast<double>(n) - 1.0) - 1.0,
        };
        double v = 0.0;
        for (const auto& blob : sites) {
          const double d2 = (p - blob.center).norm2();
          v += blob.amplitude * std::exp(-d2 / (2.0 * blob.sigma * blob.sigma));
        }
        vol.at(i, j, k) = static_cast<float>(v);
      }
    }
  }
  vol.normalize();
  return vol;
}

ScalarVolume make_marschner_lobb(std::size_t n, double fm, double alpha) {
  ScalarVolume vol(n, n, n);
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t j = 0; j < n; ++j) {
      for (std::size_t i = 0; i < n; ++i) {
        const double x = 2.0 * static_cast<double>(i) / (static_cast<double>(n) - 1.0) - 1.0;
        const double y = 2.0 * static_cast<double>(j) / (static_cast<double>(n) - 1.0) - 1.0;
        const double z = 2.0 * static_cast<double>(k) / (static_cast<double>(n) - 1.0) - 1.0;
        const double r = std::sqrt(x * x + y * y);
        const double rho = std::cos(2.0 * kPi * fm * std::cos(kPi * r / 2.0));
        const double value = (1.0 - std::sin(kPi * z / 2.0) + alpha * (1.0 + rho)) /
                             (2.0 * (1.0 + alpha));
        vol.at(i, j, k) = static_cast<float>(value);
      }
    }
  }
  return vol;
}

}  // namespace lon::volume
