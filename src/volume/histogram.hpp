// Scalar-field statistics for transfer-function design.
//
// Before browsing a dataset remotely, someone has to pick transfer-function
// control points. The histogram and its percentiles are the standard tools;
// suggest_transfer_function() turns them into a usable semi-transparent
// preset automatically (background suppressed, structures highlighted).
#pragma once

#include <cstdint>
#include <vector>

#include "volume/transfer.hpp"
#include "volume/volume.hpp"

namespace lon::volume {

struct Histogram {
  std::vector<std::uint64_t> bins;  ///< counts over [0,1] split evenly
  std::uint64_t total = 0;

  /// Value below which `fraction` of all voxels fall (0 <= fraction <= 1).
  [[nodiscard]] double percentile(double fraction) const;

  /// Index of the fullest bin (the dataset's "background" mode, usually).
  [[nodiscard]] std::size_t mode_bin() const;

  [[nodiscard]] double bin_center(std::size_t bin) const {
    return (static_cast<double>(bin) + 0.5) / static_cast<double>(bins.size());
  }
};

/// Computes a histogram over values clamped to [0, 1].
[[nodiscard]] Histogram compute_histogram(const ScalarVolume& volume,
                                          std::size_t bins = 64);

/// Derives a semi-transparent transfer function: the histogram mode (the
/// dominant background value) is made fully transparent; values toward the
/// tails gain opacity and distinct warm/cool hues.
[[nodiscard]] TransferFunction suggest_transfer_function(const ScalarVolume& volume);

}  // namespace lon::volume
